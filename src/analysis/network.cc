#include "analysis/network.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gdms::analysis {

const char* SimilarityKindName(SimilarityKind kind) {
  switch (kind) {
    case SimilarityKind::kPearson:
      return "pearson";
    case SimilarityKind::kCosine:
      return "cosine";
    case SimilarityKind::kJaccard:
      return "jaccard";
  }
  return "?";
}

double RowSimilarity(const std::vector<double>& a, const std::vector<double>& b,
                     SimilarityKind kind) {
  size_t n = a.size();
  if (n == 0 || b.size() != n) return 0;
  switch (kind) {
    case SimilarityKind::kPearson: {
      double ma = std::accumulate(a.begin(), a.end(), 0.0) / n;
      double mb = std::accumulate(b.begin(), b.end(), 0.0) / n;
      double cov = 0;
      double va = 0;
      double vb = 0;
      for (size_t i = 0; i < n; ++i) {
        cov += (a[i] - ma) * (b[i] - mb);
        va += (a[i] - ma) * (a[i] - ma);
        vb += (b[i] - mb) * (b[i] - mb);
      }
      if (va <= 0 || vb <= 0) return 0;
      return cov / std::sqrt(va * vb);
    }
    case SimilarityKind::kCosine: {
      double dot = 0;
      double na = 0;
      double nb = 0;
      for (size_t i = 0; i < n; ++i) {
        dot += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
      }
      if (na <= 0 || nb <= 0) return 0;
      return dot / std::sqrt(na * nb);
    }
    case SimilarityKind::kJaccard: {
      size_t inter = 0;
      size_t uni = 0;
      for (size_t i = 0; i < n; ++i) {
        bool pa = a[i] > 0;
        bool pb = b[i] > 0;
        if (pa && pb) ++inter;
        if (pa || pb) ++uni;
      }
      return uni == 0 ? 0 : static_cast<double>(inter) / uni;
    }
  }
  return 0;
}

GeneNetwork GeneNetwork::FromGenomeSpace(const GenomeSpace& space,
                                         SimilarityKind kind,
                                         double threshold) {
  GeneNetwork net;
  net.num_nodes_ = space.num_regions();
  net.labels_ = space.region_labels();
  // Precompute rows once.
  std::vector<std::vector<double>> rows(space.num_regions());
  for (size_t r = 0; r < space.num_regions(); ++r) rows[r] = space.Row(r);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = i + 1; j < rows.size(); ++j) {
      double sim = RowSimilarity(rows[i], rows[j], kind);
      if (sim >= threshold) {
        net.edges_.push_back({static_cast<uint32_t>(i),
                              static_cast<uint32_t>(j), sim});
      }
    }
  }
  return net;
}

std::vector<size_t> GeneNetwork::Degrees() const {
  std::vector<size_t> deg(num_nodes_, 0);
  for (const auto& e : edges_) {
    ++deg[e.a];
    ++deg[e.b];
  }
  return deg;
}

NetworkStats GeneNetwork::Stats() const {
  NetworkStats stats;
  stats.nodes = num_nodes_;
  stats.edges = edges_.size();
  auto deg = Degrees();
  size_t total = 0;
  for (size_t d : deg) {
    total += d;
    stats.max_degree = std::max(stats.max_degree, d);
  }
  stats.avg_degree =
      num_nodes_ == 0
          ? 0
          : static_cast<double>(total) / static_cast<double>(num_nodes_);
  // Connected components by union-find.
  std::vector<uint32_t> parent(num_nodes_);
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<uint32_t> rank(num_nodes_, 0);
  auto find = [&](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& e : edges_) {
    uint32_t ra = find(e.a);
    uint32_t rb = find(e.b);
    if (ra == rb) continue;
    if (rank[ra] < rank[rb]) std::swap(ra, rb);
    parent[rb] = ra;
    if (rank[ra] == rank[rb]) ++rank[ra];
  }
  std::vector<size_t> sizes(num_nodes_, 0);
  for (uint32_t v = 0; v < num_nodes_; ++v) ++sizes[find(v)];
  for (size_t s : sizes) {
    if (s > 0) {
      ++stats.connected_components;
      stats.largest_component = std::max(stats.largest_component, s);
    }
  }
  return stats;
}

std::vector<NetworkEdge> GeneNetwork::TopEdges(size_t k) const {
  std::vector<NetworkEdge> out = edges_;
  std::sort(out.begin(), out.end(),
            [](const NetworkEdge& a, const NetworkEdge& b) {
              return a.weight > b.weight;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace gdms::analysis
