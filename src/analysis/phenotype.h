#ifndef GDMS_ANALYSIS_PHENOTYPE_H_
#define GDMS_ANALYSIS_PHENOTYPE_H_

#include <string>
#include <vector>

#include "analysis/genome_space.h"
#include "common/status.h"
#include "gdm/dataset.h"

namespace gdms::analysis {

/// One region's association with a phenotype.
struct PhenotypeAssociation {
  size_t region = 0;
  std::string label;        ///< genome-space region label
  double correlation = 0;   ///< point-biserial correlation in [-1, 1]
};

/// \brief Genotype-phenotype correlation over a genome space.
///
/// Section 4.1: relationships "between [genomic data] and biological or
/// clinical features of experimental samples expressed in their metadata,
/// i.e., for genotype-phenotype correlation analysis". The phenotype is a
/// binary split of the MAP output samples by a metadata attribute-value
/// pair (e.g. karyotype == cancer); each genome-space row is scored by the
/// point-biserial correlation of its values against that split.
///
/// `map_result` must be the dataset the `space` was built from (it supplies
/// per-sample metadata, in the same order). Returns associations for all
/// regions sorted by |correlation|, strongest first. Errors when either
/// phenotype group is empty.
Result<std::vector<PhenotypeAssociation>> PhenotypeCorrelation(
    const GenomeSpace& space, const gdm::Dataset& map_result,
    const std::string& meta_attr, const std::string& meta_value);

/// Point-biserial correlation between `values` and binary `group`
/// (group[i] true = positive class). 0 when either class is empty or the
/// values are constant.
double PointBiserial(const std::vector<double>& values,
                     const std::vector<char>& group);

}  // namespace gdms::analysis

#endif  // GDMS_ANALYSIS_PHENOTYPE_H_
