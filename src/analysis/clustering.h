#ifndef GDMS_ANALYSIS_CLUSTERING_H_
#define GDMS_ANALYSIS_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "analysis/genome_space.h"

namespace gdms::analysis {

/// Result of a k-means run over genome-space rows.
struct ClusteringResult {
  std::vector<uint32_t> assignment;  ///< cluster id per region
  std::vector<std::vector<double>> centroids;
  double inertia = 0;                ///< sum of squared distances
  size_t iterations = 0;
};

/// \brief Seeded k-means over genome-space rows ("DNA region clustering",
/// paper abstract / Section 4.1).
///
/// k-means++-style seeding from the given RNG seed, Lloyd iterations until
/// assignments stabilize or `max_iters`. Rows are used as-is; callers who
/// want scale-free clustering should log-transform the MAP aggregate first.
ClusteringResult KMeans(const GenomeSpace& space, size_t k, uint64_t seed,
                        size_t max_iters = 50);

}  // namespace gdms::analysis

#endif  // GDMS_ANALYSIS_CLUSTERING_H_
