#include "repo/federation.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/parser.h"
#include "io/gdm_format.h"
#include "io/gdmz.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gdms::repo {

namespace {

/// RAII site-hop telemetry: a "federation" span (nested under whatever
/// operator span is current) carrying the protocol-counter deltas of the
/// enclosed interaction, a hop counter, and a per-hop latency histogram.
/// The byte/request registry totals themselves are mirrored at the
/// Coordinator::Account increment sites, not here, so probes issued
/// outside a hop (RunEverywhere's COMPILE scouting) are still counted.
class HopScope {
 public:
  HopScope(std::string name, const Coordinator* coordinator)
      : coordinator_(coordinator),
        before_(coordinator->counters()),
        start_ns_(obs::Tracer::Global().NowNs()),
        span_(obs::Tracer::Global().StartSpan(
            std::move(name), "federation",
            obs::Tracer::Global().current_parent())) {}

  ~HopScope() {
    static obs::Counter* hops =
        obs::MetricsRegistry::Global().GetCounter("gdms_fed_hops_total");
    static obs::Histogram* hop_latency =
        obs::MetricsRegistry::Global().GetHistogram(
            "gdms_fed_hop_latency_us");
    hops->Add();
    int64_t elapsed_ns = obs::Tracer::Global().NowNs() - start_ns_;
    hop_latency->Record(static_cast<uint64_t>(elapsed_ns / 1000));
    if (span_.active()) {
      ProtocolCounters now = coordinator_->counters();
      span_.AddAttr("requests",
                    static_cast<double>(now.requests - before_.requests));
      span_.AddAttr("bytes_sent",
                    static_cast<double>(now.bytes_sent - before_.bytes_sent));
      span_.AddAttr("bytes_received",
                    static_cast<double>(now.bytes_received -
                                        before_.bytes_received));
    }
  }

  HopScope(const HopScope&) = delete;
  HopScope& operator=(const HopScope&) = delete;

 private:
  const Coordinator* coordinator_;
  ProtocolCounters before_;
  int64_t start_ns_;
  obs::Span span_;
};

/// Releases a staged result when the enclosing RunRemote scope exits —
/// success and every error path alike, so a mid-FETCH failure can no
/// longer leak staging space on the remote node.
class StagedGuard {
 public:
  StagedGuard(FederatedNode* node, std::string query_id)
      : node_(node), query_id_(std::move(query_id)) {}
  ~StagedGuard() {
    if (node_ != nullptr) node_->ReleaseStaged(query_id_);
  }
  StagedGuard(const StagedGuard&) = delete;
  StagedGuard& operator=(const StagedGuard&) = delete;

 private:
  FederatedNode* node_;
  std::string query_id_;
};

// -- wire serialization of the typed handler payloads --

std::string EncodeCompileInfo(const CompileInfo& info) {
  if (!info.ok) return "0 " + info.error;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "1 %.17g %.17g", info.estimated_regions,
                info.estimated_bytes);
  return buf;
}

Result<CompileInfo> DecodeCompileInfo(const std::string& body) {
  if (body.size() < 2 || (body[0] != '0' && body[0] != '1') ||
      body[1] != ' ') {
    return Status::DataCorruption("malformed COMPILE reply");
  }
  CompileInfo info;
  if (body[0] == '0') {
    info.ok = false;
    info.error = body.substr(2);
    return info;
  }
  info.ok = true;
  char* end = nullptr;
  info.estimated_regions = std::strtod(body.c_str() + 2, &end);
  if (end == nullptr || *end != ' ') {
    return Status::DataCorruption("malformed COMPILE estimate");
  }
  info.estimated_bytes = std::strtod(end + 1, nullptr);
  return info;
}

/// Critical-path segment label for one wire interaction ("wire.fetch").
std::string WireSegment(MessageKind kind) {
  std::string out = "wire.";
  for (const char* p = MessageKindName(kind); *p != '\0'; ++p) {
    out += static_cast<char>(*p - 'A' + 'a');
  }
  return out;
}

/// RAII "site:<name>" trace span: scopes every rpc/backoff span the
/// enclosed RunRemote emits under one per-site node in the stitched tree.
/// No-op when the coordinator is untraced.
class TraceSiteScope {
 public:
  TraceSiteScope(Coordinator* coordinator, const std::string& site)
      : coordinator_(coordinator) {
    uint64_t now = coordinator_->transport()->clock().now_us();
    span_ = coordinator_->TraceEmit("site:" + site, "", now, 0);
    if (span_ != 0) {
      prev_parent_ = coordinator_->TraceExchangeParent(span_);
    }
  }
  ~TraceSiteScope() {
    if (span_ == 0) return;
    coordinator_->TraceClose(span_,
                             coordinator_->transport()->clock().now_us());
    coordinator_->TraceExchangeParent(prev_parent_);
  }
  TraceSiteScope(const TraceSiteScope&) = delete;
  TraceSiteScope& operator=(const TraceSiteScope&) = delete;

 private:
  Coordinator* coordinator_;
  uint64_t span_ = 0;
  uint64_t prev_parent_ = 0;
};

}  // namespace

FederatedNode::FederatedNode(std::string name) : name_(std::move(name)) {
  std::string label = "{node=\"" + obs::ExpositionLabelValue(name_) + "\"}";
  staged_bytes_gauge_ = obs::MetricsRegistry::Global().GetGauge(
      "gdms_fed_staged_bytes" + label);
  staged_results_gauge_ = obs::MetricsRegistry::Global().GetGauge(
      "gdms_fed_staged_results" + label);
  PublishStagingGaugesLocked();
}

void FederatedNode::PublishStagingGaugesLocked() const {
  staged_bytes_gauge_->Set(static_cast<int64_t>(StagedBytesLocked()));
  staged_results_gauge_->Set(static_cast<int64_t>(staged_.size()));
}

uint64_t FederatedNode::TraceRemoteSpanLocked(MessageKind kind,
                                              const obs::TraceContext& ctx) {
  std::string key = ctx.id.ToHex();
  auto it = trace_buffers_.find(key);
  if (it == trace_buffers_.end()) {
    // FIFO bound: a coordinator that gave up mid-query never fetches its
    // buffer, so old traces age out instead of accreting.
    while (trace_buffer_order_.size() >= 8) {
      trace_buffers_.erase(trace_buffer_order_.front());
      trace_buffer_order_.pop_front();
    }
    it = trace_buffers_.emplace(key, std::vector<obs::DistSpan>{}).first;
    trace_buffer_order_.push_back(key);
  }
  obs::DistSpan span;
  span.origin = name_;
  span.id = next_span_++;
  span.parent_origin = "";  // the parent rpc span lives at the coordinator
  span.parent = ctx.parent_span;
  span.name = std::string("remote:") + MessageKindName(kind);
  span.start_us = ctx.arrival_us;
  span.duration_us = 0;  // the simulation charges no server-side compute
  it->second.push_back(std::move(span));
  return it->second.back().id;
}

std::string FederatedNode::TraceBufferLocked(
    const obs::TraceContext& ctx) const {
  auto it = trace_buffers_.find(ctx.id.ToHex());
  return it == trace_buffers_.end() ? "" : obs::EncodeDistSpans(it->second);
}

Result<std::string> FederatedNode::HandleMessage(MessageKind kind,
                                                 const std::string& request) {
  // A traced coordinator prefixes one "@trace" header line; strip it and
  // open this site's span under the sender's rpc span.
  std::string body;
  obs::TraceContext ctx = StripTraceHeader(request, &body);
  uint64_t remote_span = 0;
  if (ctx.valid()) {
    std::lock_guard<std::mutex> lock(mu_);
    remote_span = TraceRemoteSpanLocked(kind, ctx);
  }
  switch (kind) {
    case MessageKind::kInfo:
      return HandleInfo();
    case MessageKind::kCompile:
      return EncodeCompileInfo(HandleCompile(body));
    case MessageKind::kExecute: {
      // First line is the idempotency token, the rest is the program.
      size_t newline = body.find('\n');
      if (newline == std::string::npos) {
        return Status::InvalidArgument("EXECUTE request missing token line");
      }
      auto result =
          HandleExecute(body.substr(newline + 1), body.substr(0, newline));
      if (ctx.valid() && result.ok()) {
        // The engine ran under this EXECUTE; record it as a child span in
        // this origin so the stitched tree shows where the work happened.
        std::lock_guard<std::mutex> lock(mu_);
        obs::DistSpan engine;
        engine.origin = name_;
        engine.id = next_span_++;
        engine.parent_origin = name_;
        engine.parent = remote_span;
        engine.name = "remote:engine";
        engine.start_us = ctx.arrival_us;
        engine.duration_us = 0;
        auto it = trace_buffers_.find(ctx.id.ToHex());
        if (it != trace_buffers_.end()) it->second.push_back(std::move(engine));
      }
      return result;
    }
    case MessageKind::kFetch: {
      size_t space = body.find(' ');
      if (space == std::string::npos) {
        return Status::InvalidArgument("FETCH request wants '<id> <index>'");
      }
      size_t index = static_cast<size_t>(
          std::strtoull(body.c_str() + space + 1, nullptr, 10));
      GDMS_ASSIGN_OR_RETURN(FetchResult chunk,
                            HandleFetch(body.substr(0, space), index));
      if (ctx.valid()) {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = trace_buffers_.find(ctx.id.ToHex());
        if (it != trace_buffers_.end() && !it->second.empty()) {
          it->second.back().attrs.emplace_back("chunk",
                                               static_cast<double>(index));
        }
        if (!chunk.has_more) {
          // Final chunk of a traced query: piggyback this site's buffered
          // spans behind a length-framed payload. The buffer stays — a
          // retried final FETCH re-ships it and the coordinator dedups.
          return "!" + std::to_string(chunk.payload.size()) + " " +
                 chunk.payload + TraceBufferLocked(ctx);
        }
      }
      return (chunk.has_more ? ">" : ".") + chunk.payload;
    }
    case MessageKind::kDataset:
      return HandleDatasetDownload(body);
  }
  return Status::InvalidArgument("unknown message kind");
}

std::string FederatedNode::HandleInfo() const {
  std::string out = "NODE " + name_ + "\n";
  for (const auto& info : catalog_.AllInfo()) {
    out += info.ToString();
    out += "\n";
  }
  return out;
}

CompileInfo FederatedNode::HandleCompile(const std::string& gmql) const {
  CompileInfo info;
  auto program = core::Parser::Parse(gmql);
  if (!program.ok()) {
    info.ok = false;
    info.error = program.status().ToString();
    return info;
  }
  info.ok = true;
  Estimator estimator(&catalog_);
  for (const auto& sink : program.value().sinks) {
    auto estimate = estimator.EstimatePlan(*sink);
    if (!estimate.ok()) {
      // Unknown dataset etc. -- still a compile-level diagnosis.
      info.ok = false;
      info.error = estimate.status().ToString();
      return info;
    }
    info.estimated_regions += estimate.value().regions;
    info.estimated_bytes += estimate.value().bytes;
  }
  return info;
}

uint64_t FederatedNode::StagedBytesLocked() const {
  uint64_t total = 0;
  for (const auto& [id, payload] : staged_) total += payload.size();
  return total;
}

uint64_t FederatedNode::staged_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return StagedBytesLocked();
}

size_t FederatedNode::staged_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return staged_.size();
}

Result<std::string> FederatedNode::HandleExecute(const std::string& gmql,
                                                 const std::string& token) {
  if (!token.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tokens_.find(token);
    if (it != tokens_.end() && staged_.count(it->second) > 0) {
      return it->second;  // retry of an EXECUTE whose response was lost
    }
  }
  core::QueryRunner runner;
  for (const auto& name : catalog_.Names()) {
    runner.RegisterDataset(*catalog_.Get(name));
  }
  GDMS_ASSIGN_OR_RETURN(auto results, runner.Run(gmql));
  // Results travel in the compressed columnar wire format; the header's
  // total_size field frames each document, so concatenation needs no
  // delimiters (see ParseConcatenated).
  std::string payload;
  for (const auto& [name, ds] : results) {
    payload += io::WriteGdmzString(ds);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (max_staged_bytes_ > 0 &&
      StagedBytesLocked() + payload.size() > max_staged_bytes_) {
    return Status::ResourceExhausted(
        "staging area full on node " + name_ + " (" +
        std::to_string(StagedBytesLocked()) + " + " +
        std::to_string(payload.size()) + " > " +
        std::to_string(max_staged_bytes_) + " bytes); fetch and release "
        "pending results first");
  }
  std::string query_id =
      name_ + "-q" + std::to_string(next_query_++);
  staged_.emplace(query_id, std::move(payload));
  if (!token.empty()) tokens_[token] = query_id;
  PublishStagingGaugesLocked();
  return query_id;
}

Result<FetchResult> FederatedNode::HandleFetch(const std::string& query_id,
                                               size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = staged_.find(query_id);
  if (it == staged_.end()) {
    return Status::NotFound("no staged result for query " + query_id);
  }
  const std::string& payload = it->second;
  size_t begin = index * chunk_bytes_;
  if (begin >= payload.size() && !(payload.empty() && index == 0)) {
    return Status::InvalidArgument("chunk index past end of staged result");
  }
  FetchResult out;
  size_t end = std::min(payload.size(), begin + chunk_bytes_);
  out.payload = payload.substr(begin, end - begin);
  out.has_more = end < payload.size();
  return out;
}

Result<std::string> FederatedNode::HandleDatasetDownload(
    const std::string& name) const {
  const gdm::Dataset* ds = catalog_.Get(name);
  if (ds == nullptr) return Status::NotFound("no dataset named " + name);
  return io::WriteGdmzString(*ds);
}

void FederatedNode::ReleaseStaged(const std::string& query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  staged_.erase(query_id);
  for (auto it = tokens_.begin(); it != tokens_.end();) {
    it = it->second == query_id ? tokens_.erase(it) : std::next(it);
  }
  PublishStagingGaugesLocked();
}

std::string FederatedResult::Annotation() const {
  if (complete()) {
    return "complete (" + std::to_string(sites_answered) + " site" +
           (sites_answered == 1 ? "" : "s") + ")";
  }
  std::string out = "partial " + std::to_string(sites_answered) + "/" +
                    std::to_string(sites_answered + sites_failed);
  if (!failures.empty()) {
    out += " (";
    for (size_t i = 0; i < failures.size(); ++i) {
      if (i > 0) out += "; ";
      out += failures[i];
    }
    out += ")";
  }
  return out;
}

Coordinator::Coordinator() {
  static std::atomic<uint64_t> next_id{1};
  coordinator_id_ = next_id.fetch_add(1, std::memory_order_relaxed);
  rng_state_ = policies_.retry.jitter_seed;
}

void Coordinator::AddNode(FederatedNode* node) {
  size_t count;
  {
    std::lock_guard<std::mutex> lock(mu_);
    nodes_[node->name()] = node;
    count = nodes_.size();
  }
  transport_.AddSite(node);
  static obs::Gauge* fed_nodes =
      obs::MetricsRegistry::Global().GetGauge("gdms_fed_nodes");
  fed_nodes->Set(static_cast<int64_t>(count));
}

void Coordinator::Account(uint64_t requests, uint64_t sent,
                          uint64_t received) {
  static obs::Counter* req_total =
      obs::MetricsRegistry::Global().GetCounter("gdms_fed_requests_total");
  static obs::Counter* shipped_total = obs::MetricsRegistry::Global()
                                           .GetCounter(
                                               "gdms_fed_bytes_shipped_total");
  static obs::Counter* received_total =
      obs::MetricsRegistry::Global().GetCounter(
          "gdms_fed_bytes_received_total");
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.requests += requests;
    counters_.bytes_sent += sent;
    counters_.bytes_received += received;
  }
  if (requests > 0) req_total->Add(requests);
  if (sent > 0) shipped_total->Add(sent);
  if (received > 0) received_total->Add(received);
}

ProtocolCounters Coordinator::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

FedStats Coordinator::fed_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fed_stats_;
}

void Coordinator::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_ = ProtocolCounters{};
  fed_stats_ = FedStats{};
}

FederatedNode* Coordinator::FindNode(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : it->second;
}

CircuitBreaker& Coordinator::BreakerForLocked(const std::string& site) {
  auto it = breakers_.find(site);
  if (it == breakers_.end()) {
    it = breakers_.emplace(site, CircuitBreaker(policies_.breaker)).first;
  }
  return it->second;
}

CircuitBreaker::State Coordinator::BreakerState(
    const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(site);
  return it == breakers_.end() ? CircuitBreaker::State::kClosed
                               : it->second.state();
}

void Coordinator::BeginTrace(const obs::TraceId& id) {
  if (!id.valid()) return;
  std::lock_guard<std::mutex> lock(mu_);
  trace_ = std::make_unique<ActiveTrace>();
  trace_->id = id;
  obs::DistSpan root;
  root.id = trace_->next_span++;
  root.name = "fed:query";
  root.start_us = transport_.clock().now_us();
  trace_->root = root.id;
  trace_->parent = root.id;
  trace_->spans.push_back(std::move(root));
}

bool Coordinator::tracing() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_ != nullptr;
}

obs::DistTrace Coordinator::FinishTrace(const std::string& reason) {
  std::unique_ptr<ActiveTrace> trace;
  {
    std::lock_guard<std::mutex> lock(mu_);
    trace = std::move(trace_);
  }
  if (trace == nullptr) return obs::DistTrace{};
  uint64_t now = transport_.clock().now_us();
  for (obs::DistSpan& span : trace->spans) {
    if (span.origin.empty() && span.id == trace->root) {
      span.duration_us = now - span.start_us;
      break;
    }
  }
  obs::DistTrace out = obs::StitchTrace(trace->id, std::move(trace->spans));
  out.reason = reason;
  return out;
}

obs::DistSpan* Coordinator::TraceFindLocked(uint64_t span) {
  if (trace_ == nullptr || span == 0) return nullptr;
  for (auto it = trace_->spans.rbegin(); it != trace_->spans.rend(); ++it) {
    if (it->origin.empty() && it->id == span) return &*it;
  }
  return nullptr;
}

uint64_t Coordinator::TraceEmit(const std::string& name,
                                const std::string& segment, uint64_t start_us,
                                uint64_t duration_us, uint64_t parent) {
  std::lock_guard<std::mutex> lock(mu_);
  if (trace_ == nullptr) return 0;
  obs::DistSpan span;
  span.id = trace_->next_span++;
  span.parent = parent != 0 ? parent : trace_->parent;
  span.name = name;
  span.segment = segment;
  span.start_us = start_us;
  span.duration_us = duration_us;
  trace_->spans.push_back(std::move(span));
  return trace_->spans.back().id;
}

void Coordinator::TraceClose(uint64_t span, uint64_t end_us) {
  std::lock_guard<std::mutex> lock(mu_);
  obs::DistSpan* s = TraceFindLocked(span);
  if (s != nullptr && end_us > s->start_us) {
    s->duration_us = end_us - s->start_us;
  }
}

void Coordinator::TraceAnnotate(uint64_t span, const std::string& key,
                                double value) {
  std::lock_guard<std::mutex> lock(mu_);
  obs::DistSpan* s = TraceFindLocked(span);
  if (s != nullptr) s->attrs.emplace_back(key, value);
}

uint64_t Coordinator::TraceExchangeParent(uint64_t parent) {
  std::lock_guard<std::mutex> lock(mu_);
  if (trace_ == nullptr) return 0;
  uint64_t prev = trace_->parent;
  trace_->parent = parent != 0 ? parent : trace_->root;
  return prev;
}

std::string Coordinator::TraceHeaderFor(uint64_t span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (trace_ == nullptr || span == 0) return "";
  obs::TraceContext ctx;
  ctx.id = trace_->id;
  ctx.parent_span = span;
  return std::string(kTraceHeaderPrefix) + obs::EncodeTraceContext(ctx) +
         "\n";
}

void Coordinator::TraceAbsorbRemote(std::string_view text) {
  if (text.empty()) return;
  std::vector<obs::DistSpan> spans = obs::DecodeDistSpans(text);
  std::lock_guard<std::mutex> lock(mu_);
  if (trace_ == nullptr) return;
  for (obs::DistSpan& span : spans) {
    // Never absorb a coordinator-origin claim from the wire: remote spans
    // carry their site name, and a corrupted line must not be able to
    // forge entries in the coordinator's own id namespace.
    if (span.origin.empty()) continue;
    trace_->spans.push_back(std::move(span));
  }
}

void Coordinator::PublishBreakerGauge(const std::string& site,
                                      CircuitBreaker::State state) {
  obs::Gauge* gauge;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = breaker_gauges_.find(site);
    if (it == breaker_gauges_.end()) {
      std::string name = "gdms_fed_breaker_state{site=\"" +
                         obs::ExpositionLabelValue(site) + "\"}";
      it = breaker_gauges_
               .emplace(site, obs::MetricsRegistry::Global().GetGauge(name))
               .first;
    }
    gauge = it->second;
  }
  gauge->Set(static_cast<int64_t>(state));
}

bool Coordinator::HedgeDelayFor(const std::string& site,
                                uint64_t* delay_us) const {
  std::vector<uint64_t> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = fetch_latencies_.find(site);
    if (it == fetch_latencies_.end() ||
        it->second.size() < policies_.hedge.min_observations) {
      return false;
    }
    sorted = it->second;
  }
  std::sort(sorted.begin(), sorted.end());
  size_t index = static_cast<size_t>(
      policies_.hedge.quantile * static_cast<double>(sorted.size()));
  if (index >= sorted.size()) index = sorted.size() - 1;
  *delay_us = std::max<uint64_t>(sorted[index], 1);
  return true;
}

void Coordinator::RecordFetchLatency(const std::string& site,
                                     uint64_t latency_us) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& samples = fetch_latencies_[site];
  samples.push_back(latency_us);
  if (samples.size() > 128) samples.erase(samples.begin());
}

uint64_t Coordinator::BackoffUs(int attempt) {
  const RetryPolicy& rp = policies_.retry;
  double base = static_cast<double>(rp.initial_backoff_us) *
                std::pow(rp.backoff_multiplier, attempt);
  uint64_t draw;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rng_state_ = SplitMix64(rng_state_);
    draw = rng_state_;
  }
  double unit = static_cast<double>(draw >> 11) * 0x1.0p-53;
  return static_cast<uint64_t>(base * (1.0 + rp.jitter * unit));
}

Result<std::string> Coordinator::Call(const std::string& site,
                                      MessageKind kind,
                                      const std::string& request) {
  static obs::Counter* retries_total =
      obs::MetricsRegistry::Global().GetCounter("gdms_fed_retries_total");
  static obs::Counter* hedges_total =
      obs::MetricsRegistry::Global().GetCounter("gdms_fed_hedges_total");
  static obs::Counter* timeouts_total =
      obs::MetricsRegistry::Global().GetCounter("gdms_fed_timeouts_total");
  static obs::Counter* corruptions_total =
      obs::MetricsRegistry::Global().GetCounter(
          "gdms_fed_corruptions_total");
  static obs::Counter* trips_total = obs::MetricsRegistry::Global()
                                         .GetCounter(
                                             "gdms_fed_breaker_trips_total");
  static obs::Counter* wasted_total = obs::MetricsRegistry::Global()
                                          .GetCounter(
                                              "gdms_fed_bytes_wasted_total");

  const RetryPolicy& rp = policies_.retry;
  Status last = Status::Internal("no attempts made");
  for (int attempt = 0; attempt < rp.max_attempts; ++attempt) {
    uint64_t now = transport_.clock().now_us();
    bool allowed;
    CircuitBreaker::State breaker_state;
    {
      std::lock_guard<std::mutex> lock(mu_);
      CircuitBreaker& breaker = BreakerForLocked(site);
      allowed = breaker.Allow(now);
      if (!allowed) ++fed_stats_.breaker_fast_fails;
      breaker_state = breaker.state();
    }
    PublishBreakerGauge(site, breaker_state);
    if (!allowed) {
      uint64_t fast_fail =
          TraceEmit("breaker:fastfail@" + site, "breaker.fastfail", now, 0);
      if (fast_fail != 0) {
        TraceAnnotate(fast_fail, "attempt", attempt);
      }
      return Status::Unavailable("circuit open for site " + site +
                                 " (fast fail)");
    }

    // When a trace is active, this attempt opens its own rpc span and the
    // request crosses the wire with a "@trace" header parented under it,
    // so the remote site's spans stitch in below this exact attempt.
    uint64_t rpc_span = TraceEmit(
        "rpc:" + std::string(MessageKindName(kind)) + "@" + site,
        WireSegment(kind), now, 0);
    std::string traced_request = TraceHeaderFor(rpc_span);
    const std::string* wire_request = &request;
    if (!traced_request.empty()) {
      traced_request += request;
      wire_request = &traced_request;
    }

    AttemptOutcome first = transport_.Attempt(site, kind, *wire_request);
    AttemptOutcome hedge;
    AttemptOutcome* winner = &first;
    uint64_t completion = first.latency_us;
    uint64_t requests = 1;
    uint64_t sent = first.bytes_sent;
    uint64_t received = 0;
    uint64_t wasted = 0;

    // Hedged FETCH: once this attempt's completion would pass the site's
    // observed p95, race a speculative duplicate and keep the earlier
    // arrival; the loser's bytes are wasted-but-accounted wire traffic.
    uint64_t hedge_delay = 0;
    uint64_t hedge_span = 0;
    if (kind == MessageKind::kFetch && policies_.hedge.enabled &&
        HedgeDelayFor(site, &hedge_delay) && completion > hedge_delay &&
        hedge_delay < rp.deadline_us) {
      hedge_span = TraceEmit(
          "rpc:" + std::string(MessageKindName(kind)) + ":hedge@" + site, "",
          now + hedge_delay, 0);
      std::string hedge_request = TraceHeaderFor(hedge_span);
      if (!hedge_request.empty()) {
        hedge_request += request;
        hedge = transport_.Attempt(site, kind, hedge_request);
      } else {
        hedge = transport_.Attempt(site, kind, request);
      }
      ++requests;
      sent += hedge.bytes_sent;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++fed_stats_.hedges;
      }
      hedges_total->Add();
      uint64_t hedge_completion =
          hedge.latency_us == AttemptOutcome::kNeverUs
              ? AttemptOutcome::kNeverUs
              : hedge_delay + hedge.latency_us;
      AttemptOutcome* loser = &hedge;
      uint64_t loser_completion = hedge_completion;
      if (hedge_completion < completion) {
        loser = &first;
        loser_completion = completion;
        winner = &hedge;
        completion = hedge_completion;
      }
      if (loser->status.ok()) {
        // The slower copy still crosses the wire eventually.
        received += loser->bytes_received;
        wasted += loser->bytes_received;
        (void)loser_completion;
      }
    }

    bool timed_out = completion > rp.deadline_us;
    uint64_t elapsed = std::min<uint64_t>(completion, rp.deadline_us);
    transport_.clock().Advance(elapsed);

    if (rpc_span != 0) {
      // Close the attempt's spans over the race window [now, now+elapsed].
      // The winner keeps its wire.* segment (it IS the critical path); the
      // hedge loser becomes a wasted detail span with no segment so the
      // sweep never double-counts the overlap, its true latency kept as an
      // attribute.
      bool first_won = winner == &first;
      std::lock_guard<std::mutex> lock(mu_);
      if (obs::DistSpan* s = TraceFindLocked(rpc_span)) {
        s->duration_us = elapsed;
        s->attrs.emplace_back("attempt", static_cast<double>(attempt));
        s->attrs.emplace_back("bytes_sent",
                              static_cast<double>(first.bytes_sent));
        s->attrs.emplace_back("bytes_received",
                              static_cast<double>(first.bytes_received));
        if (hedge_span != 0) {
          s->attrs.emplace_back("hedged", 1);
          if (!first_won) {
            s->wasted = true;
            s->segment.clear();
            s->attrs.emplace_back(
                "loser_latency_us",
                first.latency_us == AttemptOutcome::kNeverUs
                    ? 0.0
                    : static_cast<double>(first.latency_us));
          }
        }
        if (timed_out && first_won) s->attrs.emplace_back("timeout", 1);
      }
      if (obs::DistSpan* s = TraceFindLocked(hedge_span)) {
        s->duration_us = elapsed > hedge_delay ? elapsed - hedge_delay : 0;
        s->attrs.emplace_back("hedged", 1);
        s->attrs.emplace_back("bytes_received",
                              static_cast<double>(hedge.bytes_received));
        if (first_won) {
          s->wasted = true;
          s->attrs.emplace_back(
              "loser_latency_us",
              hedge.latency_us == AttemptOutcome::kNeverUs
                  ? 0.0
                  : static_cast<double>(hedge.latency_us));
        } else {
          s->segment = WireSegment(kind);
          if (timed_out) s->attrs.emplace_back("timeout", 1);
        }
      }
    }

    bool delivered = winner->status.ok() && !timed_out;
    if (delivered) {
      received += winner->bytes_received;
    } else if (winner->status.ok()) {
      // Delivered after the deadline: bytes moved, answer discarded.
      received += winner->bytes_received;
      wasted += winner->bytes_received;
    }
    Account(requests, sent, received);
    if (wasted > 0) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        fed_stats_.wasted_bytes += wasted;
      }
      wasted_total->Add(wasted);
    }

    Status status;
    if (delivered) {
      auto body = DecodeEnvelope(winner->response);
      if (body.ok()) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          CircuitBreaker& breaker = BreakerForLocked(site);
          breaker.RecordSuccess();
          breaker_state = breaker.state();
        }
        PublishBreakerGauge(site, breaker_state);
        if (kind == MessageKind::kFetch) RecordFetchLatency(site, elapsed);
        // Application-level errors (compile failures, unknown datasets,
        // staging exhaustion) are answers, not transport faults: they are
        // returned to the caller un-retried and never trip the breaker.
        return DecodeReply(body.value());
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++fed_stats_.corruptions;
      }
      corruptions_total->Add();
      status = body.status();
    } else if (timed_out) {
      status = Status::DeadlineExceeded(
          std::string(MessageKindName(kind)) + " on " + site +
          " missed its " + std::to_string(rp.deadline_us) + "us deadline" +
          (winner->status.ok() ? "" : ": " + winner->status.message()));
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++fed_stats_.timeouts;
      }
      timeouts_total->Add();
    } else {
      status = winner->status;
      if (status.code() == StatusCode::kInternal) return status;  // no link
    }

    bool tripped;
    {
      std::lock_guard<std::mutex> lock(mu_);
      CircuitBreaker& breaker = BreakerForLocked(site);
      tripped = breaker.RecordFailure(transport_.clock().now_us());
      if (tripped) ++fed_stats_.breaker_trips;
      breaker_state = breaker.state();
    }
    if (tripped) trips_total->Add();
    PublishBreakerGauge(site, breaker_state);
    last = status;
    if (attempt + 1 < rp.max_attempts) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++fed_stats_.retries;
      }
      retries_total->Add();
      uint64_t backoff = BackoffUs(attempt);
      uint64_t backoff_span =
          TraceEmit("wait:backoff@" + site, "wait.backoff",
                    transport_.clock().now_us(), backoff);
      if (backoff_span != 0) {
        TraceAnnotate(backoff_span, "attempt", attempt);
      }
      transport_.clock().Advance(backoff);
    }
  }
  return Status(last.code(),
                last.message() + " (after " +
                    std::to_string(rp.max_attempts) + " attempts)");
}

namespace {

/// Splits a concatenation of GDM documents back into datasets. Binary
/// (.gdmz) documents are framed by the total_size field of their headers;
/// legacy text payloads are still split on the text magic, so mixed-version
/// federations interoperate.
Result<std::map<std::string, gdm::Dataset>> ParseConcatenated(
    const std::string& payload) {
  std::map<std::string, gdm::Dataset> out;
  size_t pos = 0;
  const std::string magic = "#GDMS v1\n";
  while (pos < payload.size()) {
    std::string_view rest(payload.data() + pos, payload.size() - pos);
    if (io::LooksLikeGdmz(rest)) {
      GDMS_ASSIGN_OR_RETURN(uint64_t framed, io::GdmzFramedSize(rest));
      if (framed > rest.size()) {
        return Status::ParseError("truncated .gdmz document in payload");
      }
      GDMS_ASSIGN_OR_RETURN(gdm::Dataset ds,
                            io::ReadGdmzBytes(rest.substr(0, framed)));
      std::string name = ds.name();
      out.insert_or_assign(std::move(name), std::move(ds));
      pos += static_cast<size_t>(framed);
      continue;
    }
    size_t next = payload.find(magic, pos + 1);
    std::string doc = payload.substr(pos, next == std::string::npos
                                              ? std::string::npos
                                              : next - pos);
    GDMS_ASSIGN_OR_RETURN(gdm::Dataset ds, io::ReadGdmString(doc));
    std::string name = ds.name();
    out.insert_or_assign(name, std::move(ds));
    if (next == std::string::npos) break;
    pos = next;
  }
  return out;
}

}  // namespace

Result<CompileInfo> Coordinator::CompileRemote(const std::string& site,
                                               const std::string& gmql) {
  GDMS_ASSIGN_OR_RETURN(std::string body,
                        Call(site, MessageKind::kCompile, gmql));
  return DecodeCompileInfo(body);
}

Result<std::map<std::string, gdm::Dataset>> Coordinator::RunRemote(
    const std::string& node_name, const std::string& gmql) {
  FederatedNode* node = FindNode(node_name);
  if (node == nullptr) return Status::NotFound("unknown node " + node_name);
  HopScope hop("site:" + node_name, this);
  TraceSiteScope trace_scope(this, node_name);

  // COMPILE round-trip: the query text travels once, the estimate returns.
  GDMS_ASSIGN_OR_RETURN(CompileInfo compile,
                        CompileRemote(node_name, gmql));
  if (!compile.ok) {
    return Status::InvalidArgument("remote compile failed: " + compile.error);
  }

  // EXECUTE with an idempotency token, so a lost response can be retried
  // without staging a second copy server-side.
  std::string token =
      "c" + std::to_string(coordinator_id_) + "-t" +
      std::to_string(next_token_.fetch_add(1, std::memory_order_relaxed));
  GDMS_ASSIGN_OR_RETURN(
      std::string query_id,
      Call(node_name, MessageKind::kExecute, token + "\n" + gmql));

  // Staged FETCH loop (deferred retrieval, controlled communication load);
  // the guard releases the staged result on every exit path.
  StagedGuard guard(node, query_id);
  std::string payload;
  size_t index = 0;
  while (true) {
    GDMS_ASSIGN_OR_RETURN(
        std::string chunk,
        Call(node_name, MessageKind::kFetch,
             query_id + " " + std::to_string(index)));
    if (chunk.empty() ||
        (chunk[0] != '>' && chunk[0] != '.' && chunk[0] != '!')) {
      return Status::DataCorruption("malformed FETCH chunk marker");
    }
    if (chunk[0] == '!') {
      // Final chunk of a traced query: "!<len> <payload><remote spans>".
      size_t space = chunk.find(' ');
      if (space == std::string::npos) {
        return Status::DataCorruption("malformed traced FETCH framing");
      }
      uint64_t len = std::strtoull(chunk.c_str() + 1, nullptr, 10);
      if (space + 1 + len > chunk.size()) {
        return Status::DataCorruption("truncated traced FETCH chunk");
      }
      payload.append(chunk, space + 1, len);
      TraceAbsorbRemote(std::string_view(chunk).substr(space + 1 + len));
      break;
    }
    payload.append(chunk, 1, std::string::npos);
    if (chunk[0] == '.') break;
    ++index;
  }
  if (payload.empty()) return std::map<std::string, gdm::Dataset>{};
  return ParseConcatenated(payload);
}

Result<FederatedResult> Coordinator::RunEverywhere(const std::string& gmql) {
  static obs::Counter* partial_total =
      obs::MetricsRegistry::Global().GetCounter(
          "gdms_fed_partial_results_total");
  // Snapshot the node table: RunRemote below must run without the lock,
  // and a concurrent AddNode must not invalidate this iteration.
  std::map<std::string, FederatedNode*> nodes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    nodes = nodes_;
  }
  FederatedResult out;
  out.sites_total = nodes.size();
  std::string last_error = "no nodes registered";
  for (auto& [node_name, node] : nodes) {
    // Probe with COMPILE first: nodes lacking the datasets are skipped
    // without execution cost, and unreachable or breaker-tripped sites
    // degrade the result instead of failing it.
    auto compile = CompileRemote(node_name, gmql);
    if (!compile.ok()) {
      ++out.sites_failed;
      out.failures.push_back(node_name + ": " +
                             compile.status().ToString());
      last_error = out.failures.back();
      continue;
    }
    if (!compile.value().ok) {
      ++out.sites_skipped;
      last_error = node_name + ": " + compile.value().error;
      continue;
    }
    auto results = RunRemote(node_name, gmql);
    if (!results.ok()) {
      ++out.sites_failed;
      out.failures.push_back(node_name + ": " +
                             results.status().ToString());
      last_error = out.failures.back();
      continue;
    }
    for (auto& [output, ds] : results.value()) {
      std::string key = output + "@" + node_name;
      ds.set_name(key);
      out.datasets.insert_or_assign(std::move(key), std::move(ds));
    }
    ++out.sites_answered;
  }
  if (out.sites_answered == 0) {
    return Status::Unavailable("no node could answer the query: " +
                               last_error);
  }
  if (!out.complete()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++fed_stats_.partial_results;
    }
    partial_total->Add();
  }
  return out;
}

Result<std::map<std::string, gdm::Dataset>> Coordinator::RunWithDataShipping(
    const std::string& node_name, const std::vector<std::string>& datasets,
    const std::string& gmql) {
  FederatedNode* node = FindNode(node_name);
  if (node == nullptr) return Status::NotFound("unknown node " + node_name);
  HopScope hop("ship:" + node_name, this);
  core::QueryRunner runner;
  for (const auto& name : datasets) {
    GDMS_ASSIGN_OR_RETURN(std::string payload,
                          Call(node_name, MessageKind::kDataset, name));
    GDMS_ASSIGN_OR_RETURN(gdm::Dataset ds,
                          io::LooksLikeGdmz(payload)
                              ? io::ReadGdmzString(payload)
                              : io::ReadGdmString(payload));
    runner.RegisterDataset(std::move(ds));
  }
  return runner.Run(gmql);
}

}  // namespace gdms::repo
