#include "repo/federation.h"

#include <algorithm>

#include "core/parser.h"
#include "io/gdm_format.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gdms::repo {

namespace {

/// RAII site-hop telemetry: a "federation" span (nested under whatever
/// operator span is current) carrying the protocol-counter deltas of the
/// enclosed interaction, plus process-wide registry totals and a per-hop
/// latency histogram. Inert when tracing is disabled except for the
/// registry counter updates.
class HopScope {
 public:
  HopScope(std::string name, const ProtocolCounters* counters)
      : counters_(counters),
        before_(*counters),
        start_ns_(obs::Tracer::Global().NowNs()),
        span_(obs::Tracer::Global().StartSpan(
            std::move(name), "federation",
            obs::Tracer::Global().current_parent())) {}

  ~HopScope() {
    static obs::Counter* requests =
        obs::MetricsRegistry::Global().GetCounter("federation.requests");
    static obs::Counter* sent =
        obs::MetricsRegistry::Global().GetCounter("federation.bytes_sent");
    static obs::Counter* received =
        obs::MetricsRegistry::Global().GetCounter("federation.bytes_received");
    static obs::Histogram* hop_latency =
        obs::MetricsRegistry::Global().GetHistogram("federation.hop_us");
    uint64_t d_requests = counters_->requests - before_.requests;
    uint64_t d_sent = counters_->bytes_sent - before_.bytes_sent;
    uint64_t d_received = counters_->bytes_received - before_.bytes_received;
    requests->Add(d_requests);
    sent->Add(d_sent);
    received->Add(d_received);
    int64_t elapsed_ns = obs::Tracer::Global().NowNs() - start_ns_;
    hop_latency->Record(static_cast<uint64_t>(elapsed_ns / 1000));
    if (span_.active()) {
      span_.AddAttr("requests", static_cast<double>(d_requests));
      span_.AddAttr("bytes_sent", static_cast<double>(d_sent));
      span_.AddAttr("bytes_received", static_cast<double>(d_received));
    }
  }

  HopScope(const HopScope&) = delete;
  HopScope& operator=(const HopScope&) = delete;

 private:
  const ProtocolCounters* counters_;
  ProtocolCounters before_;
  int64_t start_ns_;
  obs::Span span_;
};

}  // namespace

FederatedNode::FederatedNode(std::string name) : name_(std::move(name)) {}

std::string FederatedNode::HandleInfo() const {
  std::string out = "NODE " + name_ + "\n";
  for (const auto& info : catalog_.AllInfo()) {
    out += info.ToString();
    out += "\n";
  }
  return out;
}

CompileInfo FederatedNode::HandleCompile(const std::string& gmql) const {
  CompileInfo info;
  auto program = core::Parser::Parse(gmql);
  if (!program.ok()) {
    info.ok = false;
    info.error = program.status().ToString();
    return info;
  }
  info.ok = true;
  Estimator estimator(&catalog_);
  for (const auto& sink : program.value().sinks) {
    auto estimate = estimator.EstimatePlan(*sink);
    if (!estimate.ok()) {
      // Unknown dataset etc. -- still a compile-level diagnosis.
      info.ok = false;
      info.error = estimate.status().ToString();
      return info;
    }
    info.estimated_regions += estimate.value().regions;
    info.estimated_bytes += estimate.value().bytes;
  }
  return info;
}

uint64_t FederatedNode::staged_bytes() const {
  uint64_t total = 0;
  for (const auto& [id, payload] : staged_) total += payload.size();
  return total;
}

Result<std::string> FederatedNode::HandleExecute(const std::string& gmql) {
  core::QueryRunner runner;
  for (const auto& name : catalog_.Names()) {
    runner.RegisterDataset(*catalog_.Get(name));
  }
  GDMS_ASSIGN_OR_RETURN(auto results, runner.Run(gmql));
  std::string payload;
  for (const auto& [name, ds] : results) {
    payload += io::WriteGdmString(ds);
  }
  if (max_staged_bytes_ > 0 &&
      staged_bytes() + payload.size() > max_staged_bytes_) {
    return Status::ResourceExhausted(
        "staging area full on node " + name_ + " (" +
        std::to_string(staged_bytes()) + " + " +
        std::to_string(payload.size()) + " > " +
        std::to_string(max_staged_bytes_) + " bytes); fetch and release "
        "pending results first");
  }
  std::string query_id =
      name_ + "-q" + std::to_string(next_query_++);
  staged_.emplace(query_id, std::move(payload));
  return query_id;
}

Result<FetchResult> FederatedNode::HandleFetch(const std::string& query_id,
                                               size_t index) {
  auto it = staged_.find(query_id);
  if (it == staged_.end()) {
    return Status::NotFound("no staged result for query " + query_id);
  }
  const std::string& payload = it->second;
  size_t begin = index * chunk_bytes_;
  if (begin >= payload.size() && !(payload.empty() && index == 0)) {
    return Status::InvalidArgument("chunk index past end of staged result");
  }
  FetchResult out;
  size_t end = std::min(payload.size(), begin + chunk_bytes_);
  out.payload = payload.substr(begin, end - begin);
  out.has_more = end < payload.size();
  return out;
}

Result<std::string> FederatedNode::HandleDatasetDownload(
    const std::string& name) const {
  const gdm::Dataset* ds = catalog_.Get(name);
  if (ds == nullptr) return Status::NotFound("no dataset named " + name);
  return io::WriteGdmString(*ds);
}

void FederatedNode::ReleaseStaged(const std::string& query_id) {
  staged_.erase(query_id);
}

void Coordinator::AddNode(FederatedNode* node) {
  nodes_[node->name()] = node;
}

FederatedNode* Coordinator::FindNode(const std::string& name) {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : it->second;
}

namespace {

/// Splits a concatenation of GDM documents back into datasets.
Result<std::map<std::string, gdm::Dataset>> ParseConcatenated(
    const std::string& payload) {
  std::map<std::string, gdm::Dataset> out;
  size_t pos = 0;
  const std::string magic = "#GDMS v1\n";
  while (pos < payload.size()) {
    size_t next = payload.find(magic, pos + 1);
    std::string doc = payload.substr(pos, next == std::string::npos
                                              ? std::string::npos
                                              : next - pos);
    GDMS_ASSIGN_OR_RETURN(gdm::Dataset ds, io::ReadGdmString(doc));
    std::string name = ds.name();
    out.insert_or_assign(name, std::move(ds));
    if (next == std::string::npos) break;
    pos = next;
  }
  return out;
}

}  // namespace

Result<std::map<std::string, gdm::Dataset>> Coordinator::RunRemote(
    const std::string& node_name, const std::string& gmql) {
  FederatedNode* node = FindNode(node_name);
  if (node == nullptr) return Status::NotFound("unknown node " + node_name);
  HopScope hop("site:" + node_name, &counters_);

  // COMPILE round-trip: the query text travels once, the estimate returns.
  ++counters_.requests;
  counters_.bytes_sent += gmql.size() + 16;
  CompileInfo compile = node->HandleCompile(gmql);
  counters_.bytes_received += 64;  // fixed-size estimate record
  if (!compile.ok) {
    return Status::InvalidArgument("remote compile failed: " + compile.error);
  }

  // EXECUTE.
  ++counters_.requests;
  counters_.bytes_sent += gmql.size() + 16;
  GDMS_ASSIGN_OR_RETURN(std::string query_id, node->HandleExecute(gmql));
  counters_.bytes_received += query_id.size();

  // Staged FETCH loop (deferred retrieval, controlled communication load).
  std::string payload;
  size_t index = 0;
  while (true) {
    ++counters_.requests;
    counters_.bytes_sent += query_id.size() + 24;
    GDMS_ASSIGN_OR_RETURN(FetchResult chunk,
                          node->HandleFetch(query_id, index));
    counters_.bytes_received += chunk.payload.size();
    payload += chunk.payload;
    if (!chunk.has_more) break;
    ++index;
  }
  node->ReleaseStaged(query_id);
  if (payload.empty()) return std::map<std::string, gdm::Dataset>{};
  return ParseConcatenated(payload);
}

Result<std::map<std::string, gdm::Dataset>> Coordinator::RunEverywhere(
    const std::string& gmql) {
  std::map<std::string, gdm::Dataset> merged;
  size_t answered = 0;
  std::string last_error = "no nodes registered";
  for (auto& [node_name, node] : nodes_) {
    // Probe with COMPILE first: nodes lacking the datasets are skipped
    // without execution cost.
    ++counters_.requests;
    counters_.bytes_sent += gmql.size() + 16;
    CompileInfo compile = node->HandleCompile(gmql);
    counters_.bytes_received += 64;
    if (!compile.ok) {
      last_error = node_name + ": " + compile.error;
      continue;
    }
    GDMS_ASSIGN_OR_RETURN(auto results, RunRemote(node_name, gmql));
    for (auto& [output, ds] : results) {
      std::string key = output + "@" + node_name;
      ds.set_name(key);
      merged.insert_or_assign(std::move(key), std::move(ds));
    }
    ++answered;
  }
  if (answered == 0) {
    return Status::NotFound("no node could answer the query: " + last_error);
  }
  return merged;
}

Result<std::map<std::string, gdm::Dataset>> Coordinator::RunWithDataShipping(
    const std::string& node_name, const std::vector<std::string>& datasets,
    const std::string& gmql) {
  FederatedNode* node = FindNode(node_name);
  if (node == nullptr) return Status::NotFound("unknown node " + node_name);
  HopScope hop("ship:" + node_name, &counters_);
  core::QueryRunner runner;
  for (const auto& name : datasets) {
    ++counters_.requests;
    counters_.bytes_sent += name.size() + 16;
    GDMS_ASSIGN_OR_RETURN(std::string payload,
                          node->HandleDatasetDownload(name));
    counters_.bytes_received += payload.size();
    GDMS_ASSIGN_OR_RETURN(gdm::Dataset ds, io::ReadGdmString(payload));
    runner.RegisterDataset(std::move(ds));
  }
  return runner.Run(gmql);
}

}  // namespace gdms::repo
