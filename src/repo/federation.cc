#include "repo/federation.h"

#include <algorithm>

#include "core/parser.h"
#include "io/gdm_format.h"
#include "io/gdmz.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gdms::repo {

namespace {

/// RAII site-hop telemetry: a "federation" span (nested under whatever
/// operator span is current) carrying the protocol-counter deltas of the
/// enclosed interaction, a hop counter, and a per-hop latency histogram.
/// The byte/request registry totals themselves are mirrored at the
/// Coordinator::Account increment sites, not here, so probes issued
/// outside a hop (RunEverywhere's COMPILE scouting) are still counted.
class HopScope {
 public:
  HopScope(std::string name, const ProtocolCounters* counters)
      : counters_(counters),
        before_(*counters),
        start_ns_(obs::Tracer::Global().NowNs()),
        span_(obs::Tracer::Global().StartSpan(
            std::move(name), "federation",
            obs::Tracer::Global().current_parent())) {}

  ~HopScope() {
    static obs::Counter* hops =
        obs::MetricsRegistry::Global().GetCounter("gdms_fed_hops_total");
    static obs::Histogram* hop_latency =
        obs::MetricsRegistry::Global().GetHistogram(
            "gdms_fed_hop_latency_us");
    hops->Add();
    int64_t elapsed_ns = obs::Tracer::Global().NowNs() - start_ns_;
    hop_latency->Record(static_cast<uint64_t>(elapsed_ns / 1000));
    if (span_.active()) {
      span_.AddAttr("requests", static_cast<double>(counters_->requests -
                                                    before_.requests));
      span_.AddAttr("bytes_sent", static_cast<double>(counters_->bytes_sent -
                                                      before_.bytes_sent));
      span_.AddAttr("bytes_received",
                    static_cast<double>(counters_->bytes_received -
                                        before_.bytes_received));
    }
  }

  HopScope(const HopScope&) = delete;
  HopScope& operator=(const HopScope&) = delete;

 private:
  const ProtocolCounters* counters_;
  ProtocolCounters before_;
  int64_t start_ns_;
  obs::Span span_;
};

}  // namespace

FederatedNode::FederatedNode(std::string name) : name_(std::move(name)) {
  std::string label = "{node=\"" + obs::ExpositionLabelValue(name_) + "\"}";
  staged_bytes_gauge_ = obs::MetricsRegistry::Global().GetGauge(
      "gdms_fed_staged_bytes" + label);
  staged_results_gauge_ = obs::MetricsRegistry::Global().GetGauge(
      "gdms_fed_staged_results" + label);
  PublishStagingGauges();
}

void FederatedNode::PublishStagingGauges() const {
  staged_bytes_gauge_->Set(static_cast<int64_t>(staged_bytes()));
  staged_results_gauge_->Set(static_cast<int64_t>(staged_.size()));
}

std::string FederatedNode::HandleInfo() const {
  std::string out = "NODE " + name_ + "\n";
  for (const auto& info : catalog_.AllInfo()) {
    out += info.ToString();
    out += "\n";
  }
  return out;
}

CompileInfo FederatedNode::HandleCompile(const std::string& gmql) const {
  CompileInfo info;
  auto program = core::Parser::Parse(gmql);
  if (!program.ok()) {
    info.ok = false;
    info.error = program.status().ToString();
    return info;
  }
  info.ok = true;
  Estimator estimator(&catalog_);
  for (const auto& sink : program.value().sinks) {
    auto estimate = estimator.EstimatePlan(*sink);
    if (!estimate.ok()) {
      // Unknown dataset etc. -- still a compile-level diagnosis.
      info.ok = false;
      info.error = estimate.status().ToString();
      return info;
    }
    info.estimated_regions += estimate.value().regions;
    info.estimated_bytes += estimate.value().bytes;
  }
  return info;
}

uint64_t FederatedNode::staged_bytes() const {
  uint64_t total = 0;
  for (const auto& [id, payload] : staged_) total += payload.size();
  return total;
}

Result<std::string> FederatedNode::HandleExecute(const std::string& gmql) {
  core::QueryRunner runner;
  for (const auto& name : catalog_.Names()) {
    runner.RegisterDataset(*catalog_.Get(name));
  }
  GDMS_ASSIGN_OR_RETURN(auto results, runner.Run(gmql));
  // Results travel in the compressed columnar wire format; the header's
  // total_size field frames each document, so concatenation needs no
  // delimiters (see ParseConcatenated).
  std::string payload;
  for (const auto& [name, ds] : results) {
    payload += io::WriteGdmzString(ds);
  }
  if (max_staged_bytes_ > 0 &&
      staged_bytes() + payload.size() > max_staged_bytes_) {
    return Status::ResourceExhausted(
        "staging area full on node " + name_ + " (" +
        std::to_string(staged_bytes()) + " + " +
        std::to_string(payload.size()) + " > " +
        std::to_string(max_staged_bytes_) + " bytes); fetch and release "
        "pending results first");
  }
  std::string query_id =
      name_ + "-q" + std::to_string(next_query_++);
  staged_.emplace(query_id, std::move(payload));
  PublishStagingGauges();
  return query_id;
}

Result<FetchResult> FederatedNode::HandleFetch(const std::string& query_id,
                                               size_t index) {
  auto it = staged_.find(query_id);
  if (it == staged_.end()) {
    return Status::NotFound("no staged result for query " + query_id);
  }
  const std::string& payload = it->second;
  size_t begin = index * chunk_bytes_;
  if (begin >= payload.size() && !(payload.empty() && index == 0)) {
    return Status::InvalidArgument("chunk index past end of staged result");
  }
  FetchResult out;
  size_t end = std::min(payload.size(), begin + chunk_bytes_);
  out.payload = payload.substr(begin, end - begin);
  out.has_more = end < payload.size();
  return out;
}

Result<std::string> FederatedNode::HandleDatasetDownload(
    const std::string& name) const {
  const gdm::Dataset* ds = catalog_.Get(name);
  if (ds == nullptr) return Status::NotFound("no dataset named " + name);
  return io::WriteGdmzString(*ds);
}

void FederatedNode::ReleaseStaged(const std::string& query_id) {
  staged_.erase(query_id);
  PublishStagingGauges();
}

void Coordinator::AddNode(FederatedNode* node) {
  nodes_[node->name()] = node;
  static obs::Gauge* fed_nodes =
      obs::MetricsRegistry::Global().GetGauge("gdms_fed_nodes");
  fed_nodes->Set(static_cast<int64_t>(nodes_.size()));
}

void Coordinator::Account(uint64_t requests, uint64_t sent,
                          uint64_t received) {
  static obs::Counter* req_total =
      obs::MetricsRegistry::Global().GetCounter("gdms_fed_requests_total");
  static obs::Counter* shipped_total = obs::MetricsRegistry::Global()
                                           .GetCounter(
                                               "gdms_fed_bytes_shipped_total");
  static obs::Counter* received_total =
      obs::MetricsRegistry::Global().GetCounter(
          "gdms_fed_bytes_received_total");
  counters_.requests += requests;
  counters_.bytes_sent += sent;
  counters_.bytes_received += received;
  if (requests > 0) req_total->Add(requests);
  if (sent > 0) shipped_total->Add(sent);
  if (received > 0) received_total->Add(received);
}

FederatedNode* Coordinator::FindNode(const std::string& name) {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : it->second;
}

namespace {

/// Splits a concatenation of GDM documents back into datasets. Binary
/// (.gdmz) documents are framed by the total_size field of their headers;
/// legacy text payloads are still split on the text magic, so mixed-version
/// federations interoperate.
Result<std::map<std::string, gdm::Dataset>> ParseConcatenated(
    const std::string& payload) {
  std::map<std::string, gdm::Dataset> out;
  size_t pos = 0;
  const std::string magic = "#GDMS v1\n";
  while (pos < payload.size()) {
    std::string_view rest(payload.data() + pos, payload.size() - pos);
    if (io::LooksLikeGdmz(rest)) {
      GDMS_ASSIGN_OR_RETURN(uint64_t framed, io::GdmzFramedSize(rest));
      if (framed > rest.size()) {
        return Status::ParseError("truncated .gdmz document in payload");
      }
      GDMS_ASSIGN_OR_RETURN(gdm::Dataset ds,
                            io::ReadGdmzBytes(rest.substr(0, framed)));
      std::string name = ds.name();
      out.insert_or_assign(std::move(name), std::move(ds));
      pos += static_cast<size_t>(framed);
      continue;
    }
    size_t next = payload.find(magic, pos + 1);
    std::string doc = payload.substr(pos, next == std::string::npos
                                              ? std::string::npos
                                              : next - pos);
    GDMS_ASSIGN_OR_RETURN(gdm::Dataset ds, io::ReadGdmString(doc));
    std::string name = ds.name();
    out.insert_or_assign(name, std::move(ds));
    if (next == std::string::npos) break;
    pos = next;
  }
  return out;
}

}  // namespace

Result<std::map<std::string, gdm::Dataset>> Coordinator::RunRemote(
    const std::string& node_name, const std::string& gmql) {
  FederatedNode* node = FindNode(node_name);
  if (node == nullptr) return Status::NotFound("unknown node " + node_name);
  HopScope hop("site:" + node_name, &counters_);

  // COMPILE round-trip: the query text travels once, the estimate returns.
  Account(1, gmql.size() + 16, 0);
  CompileInfo compile = node->HandleCompile(gmql);
  Account(0, 0, 64);  // fixed-size estimate record
  if (!compile.ok) {
    return Status::InvalidArgument("remote compile failed: " + compile.error);
  }

  // EXECUTE.
  Account(1, gmql.size() + 16, 0);
  GDMS_ASSIGN_OR_RETURN(std::string query_id, node->HandleExecute(gmql));
  Account(0, 0, query_id.size());

  // Staged FETCH loop (deferred retrieval, controlled communication load).
  std::string payload;
  size_t index = 0;
  while (true) {
    Account(1, query_id.size() + 24, 0);
    GDMS_ASSIGN_OR_RETURN(FetchResult chunk,
                          node->HandleFetch(query_id, index));
    Account(0, 0, chunk.payload.size());
    payload += chunk.payload;
    if (!chunk.has_more) break;
    ++index;
  }
  node->ReleaseStaged(query_id);
  if (payload.empty()) return std::map<std::string, gdm::Dataset>{};
  return ParseConcatenated(payload);
}

Result<std::map<std::string, gdm::Dataset>> Coordinator::RunEverywhere(
    const std::string& gmql) {
  std::map<std::string, gdm::Dataset> merged;
  size_t answered = 0;
  std::string last_error = "no nodes registered";
  for (auto& [node_name, node] : nodes_) {
    // Probe with COMPILE first: nodes lacking the datasets are skipped
    // without execution cost.
    Account(1, gmql.size() + 16, 0);
    CompileInfo compile = node->HandleCompile(gmql);
    Account(0, 0, 64);
    if (!compile.ok) {
      last_error = node_name + ": " + compile.error;
      continue;
    }
    GDMS_ASSIGN_OR_RETURN(auto results, RunRemote(node_name, gmql));
    for (auto& [output, ds] : results) {
      std::string key = output + "@" + node_name;
      ds.set_name(key);
      merged.insert_or_assign(std::move(key), std::move(ds));
    }
    ++answered;
  }
  if (answered == 0) {
    return Status::NotFound("no node could answer the query: " + last_error);
  }
  return merged;
}

Result<std::map<std::string, gdm::Dataset>> Coordinator::RunWithDataShipping(
    const std::string& node_name, const std::vector<std::string>& datasets,
    const std::string& gmql) {
  FederatedNode* node = FindNode(node_name);
  if (node == nullptr) return Status::NotFound("unknown node " + node_name);
  HopScope hop("ship:" + node_name, &counters_);
  core::QueryRunner runner;
  for (const auto& name : datasets) {
    Account(1, name.size() + 16, 0);
    GDMS_ASSIGN_OR_RETURN(std::string payload,
                          node->HandleDatasetDownload(name));
    Account(0, 0, payload.size());
    GDMS_ASSIGN_OR_RETURN(gdm::Dataset ds,
                          io::LooksLikeGdmz(payload)
                              ? io::ReadGdmzString(payload)
                              : io::ReadGdmString(payload));
    runner.RegisterDataset(std::move(ds));
  }
  return runner.Run(gmql);
}

}  // namespace gdms::repo
