#include "repo/estimator.h"

#include <algorithm>

namespace gdms::repo {

namespace {
constexpr double kBytesPerRegion = 48.0;
constexpr double kMetaSelectivity = 0.5;
constexpr double kRegionSelectivity = 0.5;
}  // namespace

Result<Estimate> Estimator::EstimatePlan(const core::PlanNode& node) const {
  using core::OpKind;
  Estimate out;
  std::vector<Estimate> kids;
  kids.reserve(node.children.size());
  for (const auto& child : node.children) {
    GDMS_ASSIGN_OR_RETURN(Estimate e, EstimatePlan(*child));
    kids.push_back(e);
  }
  switch (node.kind) {
    case OpKind::kSource: {
      GDMS_ASSIGN_OR_RETURN(DatasetInfo info, catalog_->Info(node.name));
      out.samples = static_cast<double>(info.num_samples);
      out.regions = static_cast<double>(info.num_regions);
      out.bytes = static_cast<double>(info.estimated_bytes);
      return out;
    }
    case OpKind::kSelect: {
      out = kids[0];
      if (node.select.meta->ToString() != "true") {
        out.samples *= kMetaSelectivity;
        out.regions *= kMetaSelectivity;
      }
      if (node.select.region->ToString() != "true") {
        out.regions *= kRegionSelectivity;
      }
      break;
    }
    case OpKind::kProject:
    case OpKind::kExtend:
    case OpKind::kOrder:
      out = kids[0];
      if (node.kind == OpKind::kOrder && node.order.top > 0 &&
          out.samples > static_cast<double>(node.order.top)) {
        double keep = static_cast<double>(node.order.top) /
                      std::max(1.0, out.samples);
        out.samples *= keep;
        out.regions *= keep;
      }
      break;
    case OpKind::kMerge:
    case OpKind::kGroup:
      out.samples = std::max(1.0, kids[0].samples / 4.0);
      out.regions = kids[0].regions;
      break;
    case OpKind::kUnion:
      out.samples = kids[0].samples + kids[1].samples;
      out.regions = kids[0].regions + kids[1].regions;
      break;
    case OpKind::kDifference:
      out = kids[0];
      out.regions *= 0.5;
      break;
    case OpKind::kSemijoin:
      out = kids[0];
      out.samples *= kMetaSelectivity;
      out.regions *= kMetaSelectivity;
      break;
    case OpKind::kJoin: {
      double pairs = std::max(1.0, kids[0].samples) *
                     std::max(1.0, kids[1].samples);
      double per_sample_left =
          kids[0].regions / std::max(1.0, kids[0].samples);
      out.samples = pairs;
      out.regions = pairs * per_sample_left;  // ~1 match per left region
      break;
    }
    case OpKind::kMap: {
      double pairs = std::max(1.0, kids[0].samples) *
                     std::max(1.0, kids[1].samples);
      double ref_regions_per_sample =
          kids[0].regions / std::max(1.0, kids[0].samples);
      out.samples = pairs;
      out.regions = pairs * ref_regions_per_sample;
      break;
    }
    case OpKind::kCover:
      out.samples = 1;
      out.regions = kids[0].regions * 0.25;
      break;
    case OpKind::kFused: {
      // The producer stage shares this node's children, so its estimate is
      // the chain's base; consumer SELECT stages keep the usual selectivity
      // haircut, PROJECT/EXTEND are size-preserving.
      GDMS_ASSIGN_OR_RETURN(out, EstimatePlan(*node.fused_stages[0]));
      for (size_t i = 1; i < node.fused_stages.size(); ++i) {
        const core::PlanNode& stage = *node.fused_stages[i];
        if (stage.kind != OpKind::kSelect) continue;
        if (stage.select.meta->ToString() != "true") {
          out.samples *= kMetaSelectivity;
          out.regions *= kMetaSelectivity;
        }
        if (stage.select.region->ToString() != "true") {
          out.regions *= kRegionSelectivity;
        }
      }
      break;
    }
    case OpKind::kMaterialize:
      out = kids[0];
      break;
  }
  out.bytes = out.regions * kBytesPerRegion;
  return out;
}

}  // namespace gdms::repo
