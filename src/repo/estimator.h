#ifndef GDMS_REPO_ESTIMATOR_H_
#define GDMS_REPO_ESTIMATOR_H_

#include <map>
#include <string>

#include "core/plan.h"
#include "repo/catalog.h"

namespace gdms::repo {

/// Estimated output cardinality of a plan (sub)tree.
struct Estimate {
  double samples = 0;
  double regions = 0;
  double bytes = 0;
};

/// \brief Heuristic cardinality estimator over the logical plan.
///
/// Backs the federated protocol's "obtain data about its compilation ...
/// including estimates of the data sizes of results" step (paper,
/// Section 4.4). Uses only catalog statistics — never touches region data —
/// so a remote node can answer a CompileRequest cheaply.
///
/// Heuristics (documented so results are interpretable, not tuned):
///   SELECT keeps 50% of samples per meta predicate and 50% of regions per
///   region predicate; MAP yields ref_regions x (ref_samples x exp_samples)
///   pairs; JOIN yields ~1 match per left region per right sample within
///   the window; COVER compresses to ~25% of pooled regions; UNION adds;
///   DIFFERENCE keeps 50% of left.
class Estimator {
 public:
  explicit Estimator(const Catalog* catalog) : catalog_(catalog) {}

  Result<Estimate> EstimatePlan(const core::PlanNode& node) const;

 private:
  const Catalog* catalog_;
};

}  // namespace gdms::repo

#endif  // GDMS_REPO_ESTIMATOR_H_
