#ifndef GDMS_REPO_TRANSPORT_H_
#define GDMS_REPO_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/dtrace.h"

namespace gdms::repo {

class FederatedNode;

/// \brief The simulated wire between a Coordinator and its FederatedNodes.
///
/// The paper's "Internet of Genomes" (Sec. 4.4) assumes cooperating but
/// unreliable peers: slow links, saturated sites, sites that are simply
/// gone. Every protocol message therefore crosses a SimTransport whose
/// per-link LinkProfile injects latency, bandwidth delay and seeded,
/// deterministic faults (drop, stall, payload corruption, down windows).
/// Time is virtual — a SimClock advanced by the caller with the computed
/// delivery latency — so fault schedules, retries, hedges and the measured
/// makespan are all bit-reproducible and machine-independent.

/// The five protocol interactions of federation.h, as wire messages.
enum class MessageKind { kInfo = 0, kCompile, kExecute, kFetch, kDataset };

const char* MessageKindName(MessageKind kind);

/// Bitmask helpers for LinkProfile::fault_kinds.
inline constexpr uint32_t MessageKindBit(MessageKind kind) {
  return 1u << static_cast<int>(kind);
}
inline constexpr uint32_t kAllMessageKinds = 0x1f;

/// One direction of simulated wire quality plus its fault schedule. All
/// fault draws derive from (seed, per-link message index) via SplitMix64,
/// so a given profile replays the same schedule on every run.
struct LinkProfile {
  uint64_t latency_us = 0;  ///< fixed per-round-trip latency
  uint64_t bandwidth_bytes_per_sec = 0;  ///< 0 = infinite
  double drop_rate = 0;      ///< message lost; the caller sees a timeout
  double stall_rate = 0;     ///< delivery delayed by stall_us
  uint64_t stall_us = 200000;
  double corrupt_rate = 0;   ///< payload bytes flipped after checksumming
  uint64_t down_from_us = 0;  ///< site-down window in sim-clock time;
  uint64_t down_until_us = 0; ///< empty window (from >= until) = never down
  bool dead = false;          ///< permanently unreachable
  uint32_t fault_kinds = kAllMessageKinds;  ///< which messages can fault
  uint64_t seed = 1;
};

/// CRC32 (IEEE 802.3 polynomial) used to checksum every payload that
/// crosses the wire; corruption faults flip bytes after the sender has
/// checksummed, so the receiver detects them and re-fetches.
uint32_t Crc32(std::string_view data);

/// SplitMix64 — the deterministic fault/jitter generator of the layer.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform draw in [0, 1) from a (seed, message, salt) triple.
inline double UnitDraw(uint64_t seed, uint64_t message, uint64_t salt) {
  uint64_t mixed = SplitMix64(seed ^ SplitMix64(message + salt * 0x51ed2701));
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

/// Wire envelope: an 8-hex-digit CRC32 of the body, a space, the body.
/// DecodeEnvelope returns DataCorruption when the checksum mismatches.
inline constexpr size_t kEnvelopeOverhead = 9;
std::string EncodeEnvelope(const std::string& body);
Result<std::string> DecodeEnvelope(const std::string& wire);

/// Application-level reply framing inside the envelope: '+' payload for
/// success, '-' code ' ' message for a handler error — so server-side
/// errors travel back across the (faulty) wire like any other payload.
std::string EncodeReply(const Result<std::string>& reply);
Result<std::string> DecodeReply(const std::string& body);

/// Opt-in trace propagation. A tracing coordinator prefixes the request
/// body with one header line — "@trace <EncodeTraceContext>\n" — and the
/// transport stamps the context's arrival_us with the virtual delivery
/// time before dispatch, so remote spans open at the instant the message
/// lands at the site. Untraced requests carry no header and stay
/// byte-identical to pre-tracing wire images (bench_e8's exact makespan
/// baselines depend on that).
inline constexpr char kTraceHeaderPrefix[] = "@trace ";

/// Splits a leading trace header off `request`: *body receives the payload
/// without the header (the whole request when no header is present) and the
/// decoded context is returned — invalid when absent or malformed.
obs::TraceContext StripTraceHeader(const std::string& request,
                                   std::string* body);

/// Virtual time, in microseconds, shared by one coordinator's links.
class SimClock {
 public:
  uint64_t now_us() const { return now_.load(std::memory_order_relaxed); }
  void Advance(uint64_t us) { now_.fetch_add(us, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_{0};
};

/// Outcome of one delivery attempt. `latency_us` is the simulated time
/// until the caller knows the outcome; kNeverUs means the message vanished
/// (the caller clamps to its deadline). Fault-free perfect links yield
/// latency 0 and an OK status, so the transport is free when unconfigured.
struct AttemptOutcome {
  static constexpr uint64_t kNeverUs = ~0ull;

  Status status = Status::OK();
  std::string response;  ///< enveloped reply wire image (when delivered)
  uint64_t latency_us = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
};

/// \brief Delivers protocol messages to registered nodes across per-link
/// simulated wires. One instance per coordinator; link state (message
/// counters) is mutex-guarded so concurrent use is safe, though fault
/// schedules are only replayable under a deterministic call order.
class SimTransport {
 public:
  SimTransport() = default;
  SimTransport(const SimTransport&) = delete;
  SimTransport& operator=(const SimTransport&) = delete;

  /// Registers a site with a perfect (zero-latency, fault-free) link.
  void AddSite(FederatedNode* node);

  /// Replaces the link profile for `site`; no-op for unknown sites.
  void SetLinkProfile(const std::string& site, const LinkProfile& profile);

  LinkProfile GetLinkProfile(const std::string& site) const;

  bool Knows(const std::string& site) const;

  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }

  /// One delivery attempt: runs the link's fault schedule, dispatches to
  /// the node's handler when the request survives, envelopes (and possibly
  /// corrupts) the reply, and prices the round trip. Does NOT advance the
  /// clock — the caller owns deadline clamping and hedged races.
  AttemptOutcome Attempt(const std::string& site, MessageKind kind,
                         const std::string& request);

 private:
  struct Link {
    FederatedNode* node = nullptr;
    LinkProfile profile;
    uint64_t messages = 0;  ///< per-link message index driving fault draws
  };

  mutable std::mutex mu_;
  SimClock clock_;
  std::map<std::string, Link> links_;
};

/// Policies for the resilient RPC layer the coordinator builds on top of
/// the transport.

struct RetryPolicy {
  int max_attempts = 4;               ///< total tries, first one included
  uint64_t deadline_us = 5'000'000;   ///< per-attempt completion deadline
  uint64_t initial_backoff_us = 10'000;
  double backoff_multiplier = 2.0;
  double jitter = 0.2;                ///< +/- fraction, seeded-deterministic
  uint64_t jitter_seed = 7;
};

struct HedgePolicy {
  bool enabled = true;
  double quantile = 0.95;       ///< hedge once latency passes this quantile
  size_t min_observations = 8;  ///< FETCH samples needed before hedging
};

struct BreakerPolicy {
  int failure_threshold = 5;          ///< consecutive failures to open
  uint64_t open_duration_us = 2'000'000;  ///< open -> half-open probe delay
};

struct FedPolicies {
  RetryPolicy retry;
  HedgePolicy hedge;
  BreakerPolicy breaker;
};

/// \brief Per-site closed / open / half-open circuit breaker over sim time.
///
/// Closed counts consecutive transport failures; at the threshold it opens
/// and fast-fails callers until open_duration_us has passed, then admits a
/// single half-open probe whose outcome closes or re-opens the circuit.
class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  explicit CircuitBreaker(BreakerPolicy policy) : policy_(policy) {}

  /// Whether a request may proceed at sim-time `now_us`; transitions
  /// open -> half-open when the open window has elapsed.
  bool Allow(uint64_t now_us) {
    if (state_ == State::kOpen && now_us >= open_until_us_) {
      state_ = State::kHalfOpen;
    }
    return state_ != State::kOpen;
  }

  void RecordSuccess() {
    consecutive_failures_ = 0;
    state_ = State::kClosed;
  }

  /// Returns true when this failure tripped the breaker open (either from
  /// closed at the threshold, or a failed half-open probe).
  bool RecordFailure(uint64_t now_us) {
    ++consecutive_failures_;
    bool trip = state_ == State::kHalfOpen ||
                (state_ == State::kClosed &&
                 consecutive_failures_ >= policy_.failure_threshold);
    if (trip) {
      state_ = State::kOpen;
      open_until_us_ = now_us + policy_.open_duration_us;
    }
    return trip;
  }

  State state() const { return state_; }
  int consecutive_failures() const { return consecutive_failures_; }

 private:
  BreakerPolicy policy_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  uint64_t open_until_us_ = 0;
};

const char* BreakerStateName(CircuitBreaker::State state);

}  // namespace gdms::repo

#endif  // GDMS_REPO_TRANSPORT_H_
