#ifndef GDMS_REPO_FEDERATION_H_
#define GDMS_REPO_FEDERATION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/runner.h"
#include "repo/catalog.h"
#include "repo/estimator.h"

namespace gdms::obs {
class Counter;
class Gauge;
}  // namespace gdms::obs

namespace gdms::repo {

/// \brief The federated query protocol of Section 4.4, in-process.
///
/// "Queries move from a requesting node to a remote node, are locally
/// executed, and results are communicated back ... transferring only query
/// results which are usually small in size." Every protocol message is a
/// serialized string so byte accounting is honest; the coordinator compares
/// query shipping against full data shipping (experiment E8).

/// Protocol interactions supported by a node:
///   INFO            — dataset summaries (metadata + schemas)
///   COMPILE <gmql>  — parse/validate + result-size estimate
///   EXECUTE <gmql>  — run and stage results under a query id
///   FETCH <id> <i>  — retrieve staged chunk i (deferred result retrieval)
///   DATASET <name>  — full dataset download (the anti-pattern E8 measures)
///
/// Per-coordinator totals; ResetCounters() re-bases them per experiment.
/// Every increment is mirrored into the process-wide metrics registry
/// (gdms_fed_requests_total, gdms_fed_bytes_shipped_total,
/// gdms_fed_bytes_received_total), which is never reset by experiments —
/// that is what the exposition and the sampler watch.
struct ProtocolCounters {
  uint64_t requests = 0;
  uint64_t bytes_sent = 0;      ///< coordinator -> node
  uint64_t bytes_received = 0;  ///< node -> coordinator
};

/// One staged query result chunk.
struct FetchResult {
  std::string payload;
  bool has_more = false;
};

/// Compilation outcome with cardinality estimates.
struct CompileInfo {
  bool ok = false;
  std::string error;
  double estimated_regions = 0;
  double estimated_bytes = 0;
};

/// \brief A repository node: catalog + local GMQL engine + staging area.
class FederatedNode {
 public:
  explicit FederatedNode(std::string name);

  const std::string& name() const { return name_; }
  Catalog* catalog() { return &catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Staged-chunk size (bytes) for deferred retrieval.
  void set_chunk_bytes(size_t n) { chunk_bytes_ = n; }

  /// Staging budget: EXECUTE fails with ResourceExhausted once the sum of
  /// staged (not yet released) results would exceed this. 0 = unlimited.
  /// The paper's "limited amount of staging at the sites hosting the
  /// services" — requesters must fetch and release before submitting more.
  void set_max_staged_bytes(uint64_t n) { max_staged_bytes_ = n; }
  uint64_t staged_bytes() const;

  // -- protocol handlers; each takes/returns serialized payloads --

  /// INFO: returns the rendered DatasetInfo list.
  std::string HandleInfo() const;

  /// COMPILE: parses the query and estimates result sizes.
  CompileInfo HandleCompile(const std::string& gmql) const;

  /// EXECUTE: runs the query, stages serialized results, returns a query id.
  Result<std::string> HandleExecute(const std::string& gmql);

  /// FETCH: returns chunk `index` of the staged result.
  Result<FetchResult> HandleFetch(const std::string& query_id, size_t index);

  /// DATASET: full serialized dataset (data shipping).
  Result<std::string> HandleDatasetDownload(const std::string& name) const;

  /// Number of currently staged results (for staging-resource control).
  size_t staged_count() const { return staged_.size(); }

  /// Drops a staged result once the requester is done.
  void ReleaseStaged(const std::string& query_id);

 private:
  /// Pushes the current staging occupancy into this node's labeled
  /// registry gauges (gdms_fed_staged_bytes{node="..."} /
  /// gdms_fed_staged_results{node="..."}).
  void PublishStagingGauges() const;

  std::string name_;
  Catalog catalog_;
  size_t chunk_bytes_ = 1 << 20;
  uint64_t max_staged_bytes_ = 0;
  std::map<std::string, std::string> staged_;  // query id -> serialized result
  uint64_t next_query_ = 1;
  /// Live per-node staging gauges; registry-owned, fetched once.
  obs::Gauge* staged_bytes_gauge_ = nullptr;
  obs::Gauge* staged_results_gauge_ = nullptr;
};

/// \brief The requesting side: ships queries (or fetches data) and accounts
/// for every byte crossing the simulated wire.
class Coordinator {
 public:
  Coordinator() = default;

  /// Registers a node; the coordinator does not own it.
  void AddNode(FederatedNode* node);

  FederatedNode* FindNode(const std::string& name);

  /// Query shipping: COMPILE on the remote node, then EXECUTE, then staged
  /// FETCHes; returns the materialized datasets. Bytes are accounted in
  /// counters().
  Result<std::map<std::string, gdm::Dataset>> RunRemote(
      const std::string& node_name, const std::string& gmql);

  /// Data shipping baseline: downloads every dataset named in `datasets`
  /// from the node, then runs the query locally.
  Result<std::map<std::string, gdm::Dataset>> RunWithDataShipping(
      const std::string& node_name, const std::vector<std::string>& datasets,
      const std::string& gmql);

  /// Broadcast: ships the query to every node whose catalog can compile it
  /// (nodes lacking the referenced datasets are skipped), then unions the
  /// per-node results under "<output>@<node>" keys. Errors only when no
  /// node could answer.
  Result<std::map<std::string, gdm::Dataset>> RunEverywhere(
      const std::string& gmql);

  const ProtocolCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = ProtocolCounters{}; }

 private:
  /// Single accounting chokepoint: bumps the per-coordinator struct and
  /// mirrors the same deltas into the process-wide registry counters so
  /// federation traffic is live in the exposition.
  void Account(uint64_t requests, uint64_t sent, uint64_t received);

  std::map<std::string, FederatedNode*> nodes_;
  ProtocolCounters counters_;
};

}  // namespace gdms::repo

#endif  // GDMS_REPO_FEDERATION_H_
