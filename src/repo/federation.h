#ifndef GDMS_REPO_FEDERATION_H_
#define GDMS_REPO_FEDERATION_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/runner.h"
#include "obs/dtrace.h"
#include "repo/catalog.h"
#include "repo/estimator.h"
#include "repo/transport.h"

namespace gdms::obs {
class Counter;
class Gauge;
}  // namespace gdms::obs

namespace gdms::repo {

/// \brief The federated query protocol of Section 4.4, in-process.
///
/// "Queries move from a requesting node to a remote node, are locally
/// executed, and results are communicated back ... transferring only query
/// results which are usually small in size." Every protocol message is a
/// serialized string crossing a SimTransport wire (see transport.h) that
/// can drop, stall, corrupt, or be down — so byte accounting is honest and
/// the coordinator's resilience (deadlines, retries, hedges, circuit
/// breakers, partial results) is actually exercised.

/// Protocol interactions supported by a node:
///   INFO            — dataset summaries (metadata + schemas)
///   COMPILE <gmql>  — parse/validate + result-size estimate
///   EXECUTE <gmql>  — run and stage results under a query id
///   FETCH <id> <i>  — retrieve staged chunk i (deferred result retrieval)
///   DATASET <name>  — full dataset download (the anti-pattern E8 measures)
///
/// Per-coordinator totals; ResetCounters() re-bases them per experiment.
/// Every increment is mirrored into the process-wide metrics registry
/// (gdms_fed_requests_total, gdms_fed_bytes_shipped_total,
/// gdms_fed_bytes_received_total), which is never reset by experiments —
/// that is what the exposition and the sampler watch.
struct ProtocolCounters {
  uint64_t requests = 0;
  uint64_t bytes_sent = 0;      ///< coordinator -> node
  uint64_t bytes_received = 0;  ///< node -> coordinator
};

/// Resilience tallies of one coordinator, mirrored into the registry as
/// gdms_fed_retries_total / gdms_fed_hedges_total / gdms_fed_timeouts_total
/// / gdms_fed_corruptions_total / gdms_fed_breaker_trips_total /
/// gdms_fed_bytes_wasted_total / gdms_fed_partial_results_total.
struct FedStats {
  uint64_t retries = 0;       ///< re-attempts after a transport failure
  uint64_t hedges = 0;        ///< speculative duplicate FETCHes issued
  uint64_t timeouts = 0;      ///< attempts that blew their deadline
  uint64_t corruptions = 0;   ///< checksum mismatches detected (re-fetched)
  uint64_t breaker_trips = 0; ///< closed/half-open -> open transitions
  uint64_t breaker_fast_fails = 0;  ///< calls rejected by an open breaker
  uint64_t wasted_bytes = 0;  ///< hedge losers + post-deadline deliveries
  uint64_t partial_results = 0;  ///< RunEverywhere calls missing sites
};

/// One staged query result chunk.
struct FetchResult {
  std::string payload;
  bool has_more = false;
};

/// Compilation outcome with cardinality estimates.
struct CompileInfo {
  bool ok = false;
  std::string error;
  double estimated_regions = 0;
  double estimated_bytes = 0;
};

/// \brief A repository node: catalog + local GMQL engine + staging area.
/// Handlers are thread-safe: concurrent coordinators (the `--serve`
/// federation driver) share nodes, so the staging map, the execution-token
/// table and the query-id counter are mutex-guarded.
class FederatedNode {
 public:
  explicit FederatedNode(std::string name);

  const std::string& name() const { return name_; }
  Catalog* catalog() { return &catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Staged-chunk size (bytes) for deferred retrieval.
  void set_chunk_bytes(size_t n) { chunk_bytes_ = n; }

  /// Staging budget: EXECUTE fails with ResourceExhausted once the sum of
  /// staged (not yet released) results would exceed this. 0 = unlimited.
  /// The paper's "limited amount of staging at the sites hosting the
  /// services" — requesters must fetch and release before submitting more.
  void set_max_staged_bytes(uint64_t n) { max_staged_bytes_ = n; }
  uint64_t staged_bytes() const;

  // -- protocol handlers; each takes/returns serialized payloads --

  /// Dispatches a serialized wire request to the matching typed handler
  /// and serializes the response; this is what the transport delivers.
  Result<std::string> HandleMessage(MessageKind kind,
                                    const std::string& request);

  /// INFO: returns the rendered DatasetInfo list.
  std::string HandleInfo() const;

  /// COMPILE: parses the query and estimates result sizes.
  CompileInfo HandleCompile(const std::string& gmql) const;

  /// EXECUTE: runs the query, stages serialized results, returns a query
  /// id. A non-empty `token` makes the call idempotent: a retry carrying
  /// the same token returns the already-staged query id instead of
  /// executing (and staging) a second copy — what makes EXECUTE safely
  /// retryable when the response is lost in transit.
  Result<std::string> HandleExecute(const std::string& gmql,
                                    const std::string& token);
  Result<std::string> HandleExecute(const std::string& gmql) {
    return HandleExecute(gmql, "");
  }

  /// FETCH: returns chunk `index` of the staged result.
  Result<FetchResult> HandleFetch(const std::string& query_id, size_t index);

  /// DATASET: full serialized dataset (data shipping).
  Result<std::string> HandleDatasetDownload(const std::string& name) const;

  /// Number of currently staged results (for staging-resource control).
  size_t staged_count() const;

  /// Drops a staged result once the requester is done.
  void ReleaseStaged(const std::string& query_id);

 private:
  /// Mints a remote span for one handled traced message and buffers it for
  /// piggyback shipping on the final FETCH chunk. Span ids come from this
  /// node's own counter — unique only within the (origin = node name)
  /// namespace; the coordinator's stitcher keys on the pair. Caller holds
  /// mu_. Returns the span id.
  uint64_t TraceRemoteSpanLocked(MessageKind kind,
                                 const obs::TraceContext& ctx);
  /// The buffered spans of one trace, serialized. Caller holds mu_.
  std::string TraceBufferLocked(const obs::TraceContext& ctx) const;
  /// Pushes the current staging occupancy into this node's labeled
  /// registry gauges (gdms_fed_staged_bytes{node="..."} /
  /// gdms_fed_staged_results{node="..."}). Caller holds mu_.
  void PublishStagingGaugesLocked() const;
  uint64_t StagedBytesLocked() const;

  std::string name_;
  Catalog catalog_;
  size_t chunk_bytes_ = 1 << 20;
  uint64_t max_staged_bytes_ = 0;
  /// Guards staged_, tokens_, next_query_, and the trace state below.
  mutable std::mutex mu_;
  std::map<std::string, std::string> staged_;  // query id -> serialized result
  std::map<std::string, std::string> tokens_;  // execution token -> query id
  uint64_t next_query_ = 1;
  /// Per-trace buffered remote spans awaiting piggyback shipment, keyed by
  /// trace id hex; FIFO-bounded so abandoned traces (coordinator gave up
  /// mid-query) cannot grow the map forever. Buffers are kept after
  /// shipping — a retried final FETCH re-ships, and the coordinator dedups
  /// by (origin, id).
  std::map<std::string, std::vector<obs::DistSpan>> trace_buffers_;
  std::deque<std::string> trace_buffer_order_;
  uint64_t next_span_ = 1;  ///< remote span ids, unique within this origin
  /// Live per-node staging gauges; registry-owned, fetched once.
  obs::Gauge* staged_bytes_gauge_ = nullptr;
  obs::Gauge* staged_results_gauge_ = nullptr;
};

/// \brief A federated broadcast's result with its completeness annotation:
/// dead or breaker-tripped sites are skipped instead of failing the whole
/// query, and the caller can see exactly what is missing.
struct FederatedResult {
  std::map<std::string, gdm::Dataset> datasets;
  size_t sites_total = 0;     ///< registered sites
  size_t sites_answered = 0;  ///< shipped results back
  size_t sites_skipped = 0;   ///< lacked the datasets (no execution cost)
  size_t sites_failed = 0;    ///< unreachable / timed out / tripped
  std::vector<std::string> failures;  ///< "site: Status" per failed site

  bool complete() const { return sites_failed == 0; }

  /// answered / (answered + failed); 1.0 when nothing was eligible.
  double completeness() const {
    size_t eligible = sites_answered + sites_failed;
    return eligible == 0
               ? 1.0
               : static_cast<double>(sites_answered) /
                     static_cast<double>(eligible);
  }

  /// "complete (2 sites)" or "partial 2/3 (geneva: Unavailable: ...)".
  std::string Annotation() const;
};

/// \brief The requesting side: ships queries (or fetches data) across the
/// simulated transport, accounts for every byte, and survives the wire —
/// per-RPC deadlines, bounded retries with exponential backoff + jitter,
/// p95-based hedged FETCHes, per-site circuit breakers, checksummed
/// payloads with re-fetch on corruption, and graceful partial results.
class Coordinator {
 public:
  Coordinator();

  /// Registers a node; the coordinator does not own it. The transport link
  /// starts perfect (zero latency, no faults) — shape it afterwards with
  /// transport()->SetLinkProfile().
  void AddNode(FederatedNode* node);

  FederatedNode* FindNode(const std::string& name);

  SimTransport* transport() { return &transport_; }

  void set_policies(const FedPolicies& policies) { policies_ = policies; }
  const FedPolicies& policies() const { return policies_; }

  /// Query shipping: COMPILE on the remote node, then EXECUTE, then staged
  /// FETCHes; returns the materialized datasets. Bytes are accounted in
  /// counters(). The staged result is released even when a mid-FETCH
  /// failure aborts the loop (RAII guard).
  Result<std::map<std::string, gdm::Dataset>> RunRemote(
      const std::string& node_name, const std::string& gmql);

  /// Data shipping baseline: downloads every dataset named in `datasets`
  /// from the node, then runs the query locally.
  Result<std::map<std::string, gdm::Dataset>> RunWithDataShipping(
      const std::string& node_name, const std::vector<std::string>& datasets,
      const std::string& gmql);

  /// Broadcast: ships the query to every node whose catalog can compile it
  /// (nodes lacking the referenced datasets are skipped), then unions the
  /// per-node results under "<output>@<node>" keys. Sites that are dead,
  /// time out, or have a tripped breaker degrade the result to partial
  /// (see FederatedResult) instead of failing it; errors only when no
  /// site could answer at all.
  Result<FederatedResult> RunEverywhere(const std::string& gmql);

  /// The resilient RPC chokepoint every protocol message goes through:
  /// breaker admission, deadline clamping, bounded retries with jittered
  /// exponential backoff, hedged FETCHes after the site's observed p95,
  /// checksum verification, byte/telemetry accounting. Returns the
  /// application-level reply payload.
  Result<std::string> Call(const std::string& site, MessageKind kind,
                           const std::string& request);

  /// Current breaker state for a site (kClosed when never used).
  CircuitBreaker::State BreakerState(const std::string& site) const;

  // -- distributed tracing (opt-in; see obs/dtrace.h) --
  //
  // BeginTrace opens a root "fed:query" span at the current virtual time
  // and switches Call() into traced mode: every attempt carries a
  // "@trace" wire header, opens a coordinator-side rpc/backoff/hedge span
  // in SimClock microseconds, and remote spans come back piggybacked on
  // the final FETCH chunk. FinishTrace closes the root and returns the
  // stitched trace. One traced query at a time per coordinator — the
  // traced drivers (gdms_shell .fed, the tests) are single-threaded; a
  // second BeginTrace before FinishTrace replaces the active trace.

  void BeginTrace(const obs::TraceId& id);
  bool tracing() const;
  obs::DistTrace FinishTrace(const std::string& reason = "");

  /// Span plumbing for the in-file trace scopes; every call is a no-op
  /// (returning 0) when no trace is active. `parent` 0 means "the current
  /// parent"; TraceClose back-fills the duration of an open span;
  /// TraceExchangeParent scopes subsequent spans under `parent` and
  /// returns the previous parent for restoration.
  uint64_t TraceEmit(const std::string& name, const std::string& segment,
                     uint64_t start_us, uint64_t duration_us,
                     uint64_t parent = 0);
  void TraceClose(uint64_t span, uint64_t end_us);
  void TraceAnnotate(uint64_t span, const std::string& key, double value);
  uint64_t TraceExchangeParent(uint64_t parent);

  /// Snapshots taken under the coordinator lock: safe to read while
  /// concurrent queries are in flight (returned by value — never a
  /// reference into mutating state).
  ProtocolCounters counters() const;
  FedStats fed_stats() const;
  void ResetCounters();

 private:
  /// Single accounting chokepoint: bumps the per-coordinator struct and
  /// mirrors the same deltas into the process-wide registry counters so
  /// federation traffic is live in the exposition.
  void Account(uint64_t requests, uint64_t sent, uint64_t received);

  /// Caller holds mu_. Map nodes are address-stable, but the breaker
  /// object itself must only be touched under the lock.
  CircuitBreaker& BreakerForLocked(const std::string& site);
  /// Locks internally; never call while holding mu_.
  void PublishBreakerGauge(const std::string& site,
                           CircuitBreaker::State state);
  /// The site's p95 FETCH completion time; false until enough samples.
  /// Locks internally.
  bool HedgeDelayFor(const std::string& site, uint64_t* delay_us) const;
  void RecordFetchLatency(const std::string& site, uint64_t latency_us);
  uint64_t BackoffUs(int attempt);

  Result<CompileInfo> CompileRemote(const std::string& site,
                                    const std::string& gmql);

  /// The active trace: the coordinator's own spans plus absorbed remote
  /// ones, all in SimClock microseconds. Guarded by mu_.
  struct ActiveTrace {
    obs::TraceId id;
    uint64_t next_span = 1;
    uint64_t root = 0;
    uint64_t parent = 0;  ///< parent for newly opened spans
    std::vector<obs::DistSpan> spans;
  };

  /// Caller holds mu_; nullptr-safe lookup of an own-origin span by id.
  obs::DistSpan* TraceFindLocked(uint64_t span);
  /// "@trace <ctx>\n" for a traced attempt parented under `span`, or ""
  /// when untraced. Locks internally.
  std::string TraceHeaderFor(uint64_t span);
  /// Decodes and absorbs piggybacked remote spans. Locks internally.
  void TraceAbsorbRemote(std::string_view text);

  SimTransport transport_;
  FedPolicies policies_;
  /// Guards every mutable member below: concurrent RunRemote /
  /// RunEverywhere calls (the serve path shares one coordinator across
  /// sessions) race on the byte counters, resilience tallies, breaker and
  /// latency tables, and the backoff RNG without it. Held only for short
  /// bookkeeping sections — never across a transport attempt.
  mutable std::mutex mu_;
  std::map<std::string, FederatedNode*> nodes_;
  ProtocolCounters counters_;
  FedStats fed_stats_;
  std::map<std::string, CircuitBreaker> breakers_;
  std::map<std::string, std::vector<uint64_t>> fetch_latencies_;
  std::map<std::string, obs::Gauge*> breaker_gauges_;
  uint64_t rng_state_ = 0;
  /// Atomic so RunRemote can mint idempotency tokens without the lock.
  std::atomic<uint64_t> next_token_{1};
  uint64_t coordinator_id_ = 0;  ///< makes execution tokens process-unique
  std::unique_ptr<ActiveTrace> trace_;  ///< null = untraced; guarded by mu_
};

}  // namespace gdms::repo

#endif  // GDMS_REPO_FEDERATION_H_
