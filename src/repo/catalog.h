#ifndef GDMS_REPO_CATALOG_H_
#define GDMS_REPO_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "gdm/dataset.h"

namespace gdms::repo {

/// Summary of a catalogued dataset, as exchanged by the federated protocol's
/// "requesting information about remote datasets" step (paper, Section 4.4):
/// metadata for locating data of interest, region schema for formalizing
/// queries, and sizes for planning transfers.
struct DatasetInfo {
  std::string name;
  std::string schema;          ///< RegionSchema::ToString()
  uint64_t num_samples = 0;
  uint64_t num_regions = 0;
  uint64_t estimated_bytes = 0;
  /// Distinct metadata attribute names with up to 8 example values each.
  std::vector<std::pair<std::string, std::vector<std::string>>>
      metadata_summary;

  std::string ToString() const;
};

/// \brief Named dataset store of one repository node.
class Catalog {
 public:
  Catalog() = default;

  /// Adds or replaces a dataset.
  void Put(gdm::Dataset dataset);

  /// Looks up a dataset; nullptr if absent.
  const gdm::Dataset* Get(const std::string& name) const;

  Status Remove(const std::string& name);

  std::vector<std::string> Names() const;
  size_t size() const { return datasets_.size(); }

  /// Builds the protocol summary for one dataset.
  Result<DatasetInfo> Info(const std::string& name) const;

  /// Summaries for every dataset.
  std::vector<DatasetInfo> AllInfo() const;

  /// Persists every dataset under `dir/<name>/` in the repository layout
  /// (io::SaveDatasetDir). Existing dataset directories are overwritten.
  Status SaveTo(const std::string& dir) const;

  /// Loads every dataset directory found under `dir` into the catalog
  /// (existing entries with the same name are replaced). Non-dataset
  /// entries are skipped; a malformed dataset directory is an error.
  Status LoadFrom(const std::string& dir);

 private:
  std::map<std::string, gdm::Dataset> datasets_;
};

}  // namespace gdms::repo

#endif  // GDMS_REPO_CATALOG_H_
