#include "repo/catalog.h"

#include <algorithm>
#include <filesystem>
#include <set>

#include "io/dataset_dir.h"

namespace gdms::repo {

std::string DatasetInfo::ToString() const {
  std::string out = name + " [" + schema + "] samples=" +
                    std::to_string(num_samples) +
                    " regions=" + std::to_string(num_regions) +
                    " bytes=" + std::to_string(estimated_bytes);
  for (const auto& [attr, values] : metadata_summary) {
    out += "\n  " + attr + ":";
    for (const auto& v : values) out += " " + v;
  }
  return out;
}

void Catalog::Put(gdm::Dataset dataset) {
  std::string name = dataset.name();
  datasets_.insert_or_assign(std::move(name), std::move(dataset));
}

const gdm::Dataset* Catalog::Get(const std::string& name) const {
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : &it->second;
}

Status Catalog::Remove(const std::string& name) {
  if (datasets_.erase(name) == 0) {
    return Status::NotFound("no dataset named " + name);
  }
  return Status::OK();
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> out;
  out.reserve(datasets_.size());
  for (const auto& [name, ds] : datasets_) out.push_back(name);
  return out;
}

Result<DatasetInfo> Catalog::Info(const std::string& name) const {
  const gdm::Dataset* ds = Get(name);
  if (ds == nullptr) return Status::NotFound("no dataset named " + name);
  DatasetInfo info;
  info.name = ds->name();
  info.schema = ds->schema().ToString();
  info.num_samples = ds->num_samples();
  info.num_regions = ds->TotalRegions();
  info.estimated_bytes = ds->EstimateBytes();
  // Collect distinct attribute names and a few example values.
  std::map<std::string, std::set<std::string>> attrs;
  for (const auto& s : ds->samples()) {
    for (const auto& e : s.metadata.entries()) {
      auto& vals = attrs[e.attr];
      if (vals.size() < 8) vals.insert(e.value);
    }
  }
  for (const auto& [attr, vals] : attrs) {
    info.metadata_summary.push_back(
        {attr, std::vector<std::string>(vals.begin(), vals.end())});
  }
  return info;
}

Status Catalog::SaveTo(const std::string& dir) const {
  for (const auto& [name, ds] : datasets_) {
    GDMS_RETURN_NOT_OK(io::SaveDatasetDir(
        ds, (std::filesystem::path(dir) / name).string()));
  }
  return Status::OK();
}

Status Catalog::LoadFrom(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_directory()) continue;
    if (!std::filesystem::exists(entry.path() / "schema.txt")) continue;
    GDMS_ASSIGN_OR_RETURN(gdm::Dataset ds,
                          io::LoadDatasetDir(entry.path().string()));
    Put(std::move(ds));
  }
  if (ec) {
    return Status::IoError("cannot list " + dir + ": " + ec.message());
  }
  return Status::OK();
}

std::vector<DatasetInfo> Catalog::AllInfo() const {
  std::vector<DatasetInfo> out;
  for (const auto& [name, ds] : datasets_) {
    auto info = Info(name);
    if (info.ok()) out.push_back(std::move(info).value());
  }
  return out;
}

}  // namespace gdms::repo
