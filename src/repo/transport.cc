#include "repo/transport.h"

#include <array>
#include <cstdio>
#include <cstring>

#include "repo/federation.h"

namespace gdms::repo {

const char* MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kInfo:
      return "INFO";
    case MessageKind::kCompile:
      return "COMPILE";
    case MessageKind::kExecute:
      return "EXECUTE";
    case MessageKind::kFetch:
      return "FETCH";
    case MessageKind::kDataset:
      return "DATASET";
  }
  return "UNKNOWN";
}

const char* BreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t crc = 0xffffffffu;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::string EncodeEnvelope(const std::string& body) {
  char head[16];
  std::snprintf(head, sizeof(head), "%08x ", Crc32(body));
  return std::string(head) + body;
}

Result<std::string> DecodeEnvelope(const std::string& wire) {
  if (wire.size() < kEnvelopeOverhead || wire[kEnvelopeOverhead - 1] != ' ') {
    return Status::DataCorruption("malformed wire envelope");
  }
  uint32_t declared = 0;
  for (size_t i = 0; i < 8; ++i) {
    char c = wire[i];
    uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a' + 10);
    } else {
      return Status::DataCorruption("malformed wire checksum");
    }
    declared = declared * 16 + digit;
  }
  std::string body = wire.substr(kEnvelopeOverhead);
  if (Crc32(body) != declared) {
    return Status::DataCorruption("payload checksum mismatch (crc32)");
  }
  return body;
}

std::string EncodeReply(const Result<std::string>& reply) {
  if (reply.ok()) return "+" + reply.value();
  return "-" + std::to_string(static_cast<int>(reply.status().code())) + " " +
         reply.status().message();
}

obs::TraceContext StripTraceHeader(const std::string& request,
                                   std::string* body) {
  obs::TraceContext ctx;
  constexpr size_t kPrefixLen = sizeof(kTraceHeaderPrefix) - 1;
  if (request.compare(0, kPrefixLen, kTraceHeaderPrefix) != 0) {
    *body = request;
    return ctx;
  }
  size_t eol = request.find('\n');
  if (eol == std::string::npos) {
    *body = request;
    return ctx;
  }
  std::string_view header(request);
  header = header.substr(kPrefixLen, eol - kPrefixLen);
  if (!obs::DecodeTraceContext(header, &ctx)) ctx = obs::TraceContext{};
  *body = request.substr(eol + 1);
  return ctx;
}

Result<std::string> DecodeReply(const std::string& body) {
  if (body.empty()) return Status::DataCorruption("empty reply body");
  if (body[0] == '+') return body.substr(1);
  if (body[0] != '-') return Status::DataCorruption("malformed reply marker");
  size_t space = body.find(' ');
  if (space == std::string::npos) {
    return Status::DataCorruption("malformed reply status");
  }
  int code = std::atoi(body.substr(1, space - 1).c_str());
  if (code <= 0 || code > static_cast<int>(StatusCode::kDataCorruption)) {
    return Status::DataCorruption("unknown reply status code");
  }
  return Status(static_cast<StatusCode>(code), body.substr(space + 1));
}

void SimTransport::AddSite(FederatedNode* node) {
  std::lock_guard<std::mutex> lock(mu_);
  links_[node->name()].node = node;
}

void SimTransport::SetLinkProfile(const std::string& site,
                                  const LinkProfile& profile) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = links_.find(site);
  if (it != links_.end()) it->second.profile = profile;
}

LinkProfile SimTransport::GetLinkProfile(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = links_.find(site);
  return it == links_.end() ? LinkProfile{} : it->second.profile;
}

bool SimTransport::Knows(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return links_.count(site) > 0;
}

AttemptOutcome SimTransport::Attempt(const std::string& site,
                                     MessageKind kind,
                                     const std::string& request) {
  AttemptOutcome out;
  FederatedNode* node = nullptr;
  LinkProfile profile;
  uint64_t message = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = links_.find(site);
    if (it == links_.end()) {
      out.status = Status::Internal("no link to site " + site);
      return out;
    }
    node = it->second.node;
    profile = it->second.profile;
    message = it->second.messages++;
  }
  uint64_t now = clock_.now_us();

  // Stamp a traced request's arrival time: the remote site opens its spans
  // at the instant the message lands, i.e. one nominal one-way latency
  // after send (stall/bandwidth delay is attributed to the wire span on
  // the coordinator side, not to the remote clock).
  const std::string* dispatched = &request;
  std::string patched;
  constexpr size_t kPrefixLen = sizeof(kTraceHeaderPrefix) - 1;
  if (request.compare(0, kPrefixLen, kTraceHeaderPrefix) == 0) {
    std::string rest;
    obs::TraceContext ctx = StripTraceHeader(request, &rest);
    if (ctx.valid()) {
      ctx.arrival_us = now + profile.latency_us / 2;
      patched = kTraceHeaderPrefix + obs::EncodeTraceContext(ctx) + "\n" +
                rest;
      dispatched = &patched;
    }
  }

  // Request wire image: KIND + space + enveloped body.
  out.bytes_sent =
      std::strlen(MessageKindName(kind)) + 1 + kEnvelopeOverhead +
      dispatched->size();

  bool in_down_window = profile.down_until_us > profile.down_from_us &&
                        now >= profile.down_from_us &&
                        now < profile.down_until_us;
  if (profile.dead || in_down_window) {
    // Connection refused: the failure is known after one link RTT.
    out.status = Status::Unavailable("site " + site + " unreachable");
    out.latency_us = profile.latency_us;
    return out;
  }

  bool faultable = (profile.fault_kinds & MessageKindBit(kind)) != 0;
  double roll_drop = UnitDraw(profile.seed, message, 0);
  double roll_stall = UnitDraw(profile.seed, message, 1);
  double roll_corrupt = UnitDraw(profile.seed, message, 2);

  // Half the drops lose the request (the handler never runs), half lose
  // the response (server work done, answer gone) — the case the EXECUTE
  // idempotency token exists for.
  if (faultable && roll_drop < profile.drop_rate / 2) {
    out.status =
        Status::DeadlineExceeded("request to " + site + " lost in transit");
    out.latency_us = AttemptOutcome::kNeverUs;
    return out;
  }

  std::string body = EncodeReply(node->HandleMessage(kind, *dispatched));

  if (faultable && roll_drop < profile.drop_rate) {
    out.status = Status::DeadlineExceeded("response from " + site +
                                          " lost in transit");
    out.latency_us = AttemptOutcome::kNeverUs;
    return out;
  }

  std::string wire = EncodeEnvelope(body);
  if (faultable && roll_corrupt < profile.corrupt_rate) {
    // Flip bytes past the checksum header; the sender checksummed the
    // clean body, so the receiver's CRC32 catches every flip.
    for (size_t i = kEnvelopeOverhead; i < wire.size(); i += 97) {
      wire[i] = static_cast<char>(wire[i] ^ 0x20);
    }
  }
  out.bytes_received = wire.size();
  out.response = std::move(wire);

  uint64_t latency = profile.latency_us;
  if (profile.bandwidth_bytes_per_sec > 0) {
    latency += static_cast<uint64_t>(
        static_cast<double>(out.bytes_sent + out.bytes_received) * 1e6 /
        static_cast<double>(profile.bandwidth_bytes_per_sec));
  }
  if (faultable && roll_stall < profile.stall_rate) {
    latency += profile.stall_us;
  }
  out.latency_us = latency;
  return out;
}

}  // namespace gdms::repo
