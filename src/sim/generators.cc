#include "sim/generators.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace gdms::sim {

namespace {

using gdm::AttrType;
using gdm::Dataset;
using gdm::GenomeAssembly;
using gdm::GenomicRegion;
using gdm::Metadata;
using gdm::RegionSchema;
using gdm::Sample;
using gdm::Strand;
using gdm::Value;

/// Draws a genome position, returning (chromosome index, position).
std::pair<size_t, int64_t> RandomPosition(const GenomeAssembly& genome,
                                          Rng* rng) {
  // Chromosomes weighted by length.
  int64_t total = genome.TotalLength();
  int64_t pick = rng->Uniform(0, total - 1);
  for (size_t c = 0; c < genome.num_chromosomes(); ++c) {
    if (pick < genome.chrom_length(c)) return {c, pick};
    pick -= genome.chrom_length(c);
  }
  return {genome.num_chromosomes() - 1,
          genome.chrom_length(genome.num_chromosomes() - 1) / 2};
}

/// Shared hotspot machinery: fixed genomic positions that attract events.
std::vector<std::pair<size_t, int64_t>> MakeHotspots(
    const GenomeAssembly& genome, size_t count, Rng* rng) {
  std::vector<std::pair<size_t, int64_t>> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(RandomPosition(genome, rng));
  return out;
}

GenomicRegion ClampedRegion(const GenomeAssembly& genome, size_t chrom_index,
                            int64_t center, int64_t length, Strand strand) {
  int64_t chrom_len = genome.chrom_length(chrom_index);
  if (length < 1) length = 1;
  int64_t left = center - length / 2;
  if (left < 0) left = 0;
  int64_t right = left + length;
  if (right > chrom_len) {
    right = chrom_len;
    left = std::max<int64_t>(0, right - length);
  }
  return GenomicRegion(genome.chrom_id(chrom_index), left, right, strand);
}

}  // namespace

GeneCatalog GenerateGenes(const GenomeAssembly& genome, size_t num_genes,
                          uint64_t seed) {
  Rng rng(Mix64(seed) ^ 0x67656e65ULL);
  GeneCatalog catalog;
  catalog.genes.reserve(num_genes);
  // Distribute genes across chromosomes proportionally to length, walking
  // each chromosome with exponential gaps sized to fit the quota.
  int64_t total = genome.TotalLength();
  size_t gene_counter = 0;
  for (size_t c = 0; c < genome.num_chromosomes(); ++c) {
    int64_t chrom_len = genome.chrom_length(c);
    size_t quota = static_cast<size_t>(
        static_cast<double>(num_genes) * static_cast<double>(chrom_len) /
        static_cast<double>(total));
    if (quota == 0) continue;
    double mean_stride = static_cast<double>(chrom_len) / (quota + 1);
    int64_t pos =
        static_cast<int64_t>(rng.Exponential(1.0 / (mean_stride / 2)));
    for (size_t g = 0; g < quota && pos < chrom_len - 1000; ++g) {
      int64_t gene_len =
          1000 + static_cast<int64_t>(rng.Exponential(1.0 / 30000.0));
      gene_len = std::min<int64_t>(gene_len, 500000);
      int64_t right = std::min(pos + gene_len, chrom_len);
      Strand strand = rng.Bernoulli(0.5) ? Strand::kPlus : Strand::kMinus;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "GENE%06zu", gene_counter++);
      catalog.genes.push_back(
          {genome.chrom_id(c), pos, right, strand, std::string(buf)});
      pos = right + static_cast<int64_t>(rng.Exponential(1.0 / mean_stride));
    }
  }
  return catalog;
}

gdm::Dataset GeneratePeakDataset(const GenomeAssembly& genome,
                                 const PeakDatasetOptions& options,
                                 uint64_t seed, const std::string& name) {
  RegionSchema schema;
  (void)schema.AddAttr("name", AttrType::kString);
  (void)schema.AddAttr("score", AttrType::kDouble);
  (void)schema.AddAttr("signal", AttrType::kDouble);
  (void)schema.AddAttr("p_value", AttrType::kDouble);
  Dataset ds(name, schema);

  Rng hotspot_rng(Mix64(seed) ^ 0x686f74ULL);
  auto hotspots = MakeHotspots(genome, options.num_hotspots, &hotspot_rng);

  static const char* kKaryotypes[] = {"normal", "cancer"};
  static const char* kSex[] = {"male", "female"};
  static const char* kLabs[] = {"broad", "uw", "stanford", "polimi"};

  for (size_t s = 0; s < options.num_samples; ++s) {
    Rng rng(HashCombine(Mix64(seed), s + 1));
    Sample sample(static_cast<gdm::SampleId>(s + 1));
    const std::string& antibody =
        options.antibodies[s % options.antibodies.size()];
    sample.metadata.Add("dataType", options.data_type);
    sample.metadata.Add("antibody", antibody);
    sample.metadata.Add("cell",
                        options.cells[rng.Next() % options.cells.size()]);
    sample.metadata.Add("karyotype", kKaryotypes[rng.Next() % 2]);
    sample.metadata.Add("sex", kSex[rng.Next() % 2]);
    sample.metadata.Add("lab", kLabs[rng.Next() % 4]);
    sample.metadata.Add("sample_name", name + "_" + std::to_string(s + 1));

    // Antibody-specific hotspot subset: samples with the same antibody
    // co-localize more than samples with different ones.
    size_t ab_index = s % options.antibodies.size();
    sample.regions.reserve(options.peaks_per_sample);
    for (size_t p = 0; p < options.peaks_per_sample; ++p) {
      int64_t len = static_cast<int64_t>(
          rng.Normal(static_cast<double>(options.peak_len_mean),
                     static_cast<double>(options.peak_len_sd)));
      if (len < 50) len = 50;
      size_t chrom_index;
      int64_t center;
      if (!hotspots.empty() && rng.Bernoulli(options.hotspot_fraction)) {
        // Zipf-weighted hotspot choice within the antibody's stratum.
        size_t stratum = hotspots.size() / options.antibodies.size();
        if (stratum == 0) stratum = hotspots.size();
        size_t base = (ab_index * stratum) % hotspots.size();
        size_t hs = (base + static_cast<size_t>(
                                rng.Zipf(static_cast<int64_t>(stratum), 1.2))) %
                    hotspots.size();
        chrom_index = hotspots[hs].first;
        center = hotspots[hs].second +
                 static_cast<int64_t>(rng.Normal(0.0, 300.0));
        if (center < 0) center = 0;
      } else {
        auto pos = RandomPosition(genome, &rng);
        chrom_index = pos.first;
        center = pos.second;
      }
      GenomicRegion r =
          ClampedRegion(genome, chrom_index, center, len, Strand::kNone);
      double signal = std::abs(rng.Normal(8.0, 4.0)) + 0.1;
      double p_value = std::exp(-signal);  // stronger peaks are more
                                           // significant
      char peak_name[48];
      std::snprintf(peak_name, sizeof(peak_name), "peak_%zu_%zu", s + 1, p);
      r.values.push_back(Value(std::string(peak_name)));
      r.values.push_back(Value(std::min(1000.0, signal * 100.0)));
      r.values.push_back(Value(signal));
      r.values.push_back(Value(p_value));
      sample.regions.push_back(std::move(r));
    }
    sample.SortNow();
    ds.AddSample(std::move(sample));
  }
  return ds;
}

gdm::Dataset GenerateAnnotations(const GenomeAssembly& genome,
                                 const GeneCatalog& catalog,
                                 const AnnotationOptions& options,
                                 uint64_t seed, const std::string& name) {
  RegionSchema schema;
  (void)schema.AddAttr("name", AttrType::kString);
  (void)schema.AddAttr("ann_type", AttrType::kString);
  Dataset ds(name, schema);

  Sample genes(1);
  genes.metadata.Add("annType", "gene");
  genes.metadata.Add("provider", "UCSC-like");
  Sample promoters(2);
  promoters.metadata.Add("annType", "promoter");
  promoters.metadata.Add("provider", "UCSC-like");
  for (const auto& g : catalog.genes) {
    GenomicRegion gr(g.chrom, g.left, g.right, g.strand);
    gr.values.push_back(Value(g.id));
    gr.values.push_back(Value("gene"));
    genes.regions.push_back(std::move(gr));

    int64_t tss = g.Tss();
    int64_t pl, pr;
    if (g.strand == Strand::kMinus) {
      pl = tss - options.promoter_downstream;
      pr = tss + options.promoter_upstream;
    } else {
      pl = tss - options.promoter_upstream;
      pr = tss + options.promoter_downstream;
    }
    if (pl < 0) pl = 0;
    GenomicRegion pr_region(g.chrom, pl, pr, g.strand);
    pr_region.values.push_back(Value(g.id + "_prom"));
    pr_region.values.push_back(Value("promoter"));
    promoters.regions.push_back(std::move(pr_region));
  }
  genes.SortNow();
  promoters.SortNow();

  Sample enhancers(3);
  enhancers.metadata.Add("annType", "enhancer");
  enhancers.metadata.Add("provider", "UCSC-like");
  Rng rng(Mix64(seed) ^ 0x656e68ULL);
  for (size_t e = 0; e < options.num_enhancers; ++e) {
    auto pos = RandomPosition(genome, &rng);
    int64_t len = std::max<int64_t>(
        100, static_cast<int64_t>(
                 rng.Normal(static_cast<double>(options.enhancer_len_mean),
                            options.enhancer_len_mean / 3.0)));
    GenomicRegion r = ClampedRegion(genome, pos.first, pos.second, len,
                                    Strand::kNone);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "ENH%06zu", e);
    r.values.push_back(Value(std::string(buf)));
    r.values.push_back(Value("enhancer"));
    enhancers.regions.push_back(std::move(r));
  }
  enhancers.SortNow();

  ds.AddSample(std::move(genes));
  ds.AddSample(std::move(promoters));
  ds.AddSample(std::move(enhancers));
  return ds;
}

gdm::Dataset GenerateMutations(const GenomeAssembly& genome,
                               const MutationOptions& options, uint64_t seed,
                               const std::string& name) {
  RegionSchema schema;
  (void)schema.AddAttr("mut_type", AttrType::kString);
  (void)schema.AddAttr("vaf", AttrType::kDouble);
  Dataset ds(name, schema);

  // Fragile sites are shared with GenerateBreakpoints for the same seed, so
  // the Section 3 correlation is present in the synthetic data by design.
  Rng fragile_rng(Mix64(seed) ^ 0x66726167ULL);
  auto fragile = MakeHotspots(genome, options.num_fragile_sites, &fragile_rng);

  static const char* kMutTypes[] = {"SNV", "INS", "DEL"};
  for (size_t s = 0; s < options.num_samples; ++s) {
    Rng rng(HashCombine(Mix64(seed ^ 0x6d7574ULL), s + 1));
    Sample sample(static_cast<gdm::SampleId>(s + 1));
    const std::string& condition =
        options.conditions[s % options.conditions.size()];
    sample.metadata.Add("dataType", "Mutation");
    sample.metadata.Add("condition", condition);
    sample.metadata.Add("patient", "P" + std::to_string(s / 2 + 1));
    // Oncogene induction concentrates mutations in fragile sites harder.
    double frag = options.fragile_fraction;
    if (condition == "oncogene_induced") frag = std::min(1.0, frag * 1.5);
    for (size_t m = 0; m < options.mutations_per_sample; ++m) {
      size_t chrom_index;
      int64_t center;
      if (!fragile.empty() && rng.Bernoulli(frag)) {
        size_t fs = static_cast<size_t>(
            rng.Zipf(static_cast<int64_t>(fragile.size()), 1.1));
        chrom_index = fragile[fs].first;
        center = fragile[fs].second +
                 static_cast<int64_t>(rng.Normal(0.0, 5000.0));
        if (center < 0) center = 0;
      } else {
        auto pos = RandomPosition(genome, &rng);
        chrom_index = pos.first;
        center = pos.second;
      }
      const char* mt = kMutTypes[rng.Next() % 3];
      int64_t len = (mt[0] == 'S') ? 1 : rng.Uniform(1, 30);
      GenomicRegion r =
          ClampedRegion(genome, chrom_index, center, len, Strand::kNone);
      r.values.push_back(Value(std::string(mt)));
      r.values.push_back(Value(0.05 + 0.95 * rng.UniformDouble()));
      sample.regions.push_back(std::move(r));
    }
    sample.SortNow();
    ds.AddSample(std::move(sample));
  }
  return ds;
}

gdm::Dataset GenerateBreakpoints(const GenomeAssembly& genome,
                                 const BreakpointOptions& options,
                                 uint64_t seed, const std::string& name) {
  RegionSchema schema;
  (void)schema.AddAttr("score", AttrType::kDouble);
  Dataset ds(name, schema);

  Rng fragile_rng(Mix64(seed) ^ 0x66726167ULL);  // same tag as mutations
  auto fragile = MakeHotspots(genome, options.num_fragile_sites, &fragile_rng);

  for (size_t s = 0; s < options.num_samples; ++s) {
    Rng rng(HashCombine(Mix64(seed ^ 0x62726bULL), s + 1));
    Sample sample(static_cast<gdm::SampleId>(s + 1));
    const std::string& condition =
        options.conditions[s % options.conditions.size()];
    sample.metadata.Add("dataType", "BreakPoint");
    sample.metadata.Add("condition", condition);
    double frag = options.fragile_fraction;
    size_t breaks = options.breaks_per_sample;
    if (condition == "oncogene_induced") {
      breaks = breaks * 2;  // induction produces abnormal break counts
    }
    for (size_t b = 0; b < breaks; ++b) {
      size_t chrom_index;
      int64_t center;
      if (!fragile.empty() && rng.Bernoulli(frag)) {
        size_t fs = static_cast<size_t>(
            rng.Zipf(static_cast<int64_t>(fragile.size()), 1.1));
        chrom_index = fragile[fs].first;
        center = fragile[fs].second +
                 static_cast<int64_t>(rng.Normal(0.0, 2000.0));
        if (center < 0) center = 0;
      } else {
        auto pos = RandomPosition(genome, &rng);
        chrom_index = pos.first;
        center = pos.second;
      }
      GenomicRegion r = ClampedRegion(genome, chrom_index, center,
                                      rng.Uniform(50, 400), Strand::kNone);
      r.values.push_back(Value(std::abs(rng.Normal(5.0, 2.0))));
      sample.regions.push_back(std::move(r));
    }
    sample.SortNow();
    ds.AddSample(std::move(sample));
  }
  return ds;
}

gdm::Dataset GenerateReplicationTiming(const GenomeAssembly& genome,
                                       const ReplicationOptions& options,
                                       uint64_t seed, const std::string& name) {
  RegionSchema schema;
  (void)schema.AddAttr("rt_value", AttrType::kDouble);
  Dataset ds(name, schema);

  // Domain boundaries are shared across conditions; only values shift.
  struct Domain {
    int32_t chrom;
    int64_t left;
    int64_t right;
    double base_value;
    bool shifted;
  };
  std::vector<Domain> domains;
  Rng dom_rng(Mix64(seed) ^ 0x646f6dULL);
  for (size_t c = 0; c < genome.num_chromosomes(); ++c) {
    int64_t pos = 0;
    int64_t chrom_len = genome.chrom_length(c);
    while (pos < chrom_len) {
      int64_t len = std::max<int64_t>(
          100000,
          static_cast<int64_t>(dom_rng.Exponential(
              1.0 / static_cast<double>(options.domain_len_mean))));
      int64_t right = std::min(pos + len, chrom_len);
      domains.push_back({genome.chrom_id(c), pos, right,
                         dom_rng.Normal(0.0, 1.0),
                         dom_rng.Bernoulli(options.shift_fraction)});
      pos = right;
    }
  }

  for (size_t s = 0; s < options.conditions.size(); ++s) {
    Rng rng(HashCombine(Mix64(seed ^ 0x7274ULL), s + 1));
    Sample sample(static_cast<gdm::SampleId>(s + 1));
    sample.metadata.Add("dataType", "ReplicationTiming");
    sample.metadata.Add("condition", options.conditions[s]);
    bool induced = options.conditions[s] != "control";
    for (const auto& d : domains) {
      double value = d.base_value + rng.Normal(0.0, 0.1);
      if (induced && d.shifted) value -= 1.5;  // induction delays timing
      GenomicRegion r(d.chrom, d.left, d.right, Strand::kNone);
      r.values.push_back(Value(value));
      sample.regions.push_back(std::move(r));
    }
    sample.SortNow();
    ds.AddSample(std::move(sample));
  }
  return ds;
}

gdm::Dataset GenerateExpression(const GenomeAssembly& genome,
                                const GeneCatalog& catalog,
                                const ExpressionOptions& options,
                                uint64_t seed, const std::string& name) {
  (void)genome;
  RegionSchema schema;
  (void)schema.AddAttr("gene", AttrType::kString);
  (void)schema.AddAttr("fpkm", AttrType::kDouble);
  Dataset ds(name, schema);

  // Per-gene baseline and differential flags shared across conditions.
  Rng base_rng(Mix64(seed) ^ 0x65787072ULL);
  std::vector<double> baseline(catalog.genes.size());
  std::vector<char> diff(catalog.genes.size());
  for (size_t g = 0; g < catalog.genes.size(); ++g) {
    baseline[g] = std::exp(base_rng.Normal(2.0, 1.5));
    diff[g] = base_rng.Bernoulli(options.diff_fraction) ? 1 : 0;
  }

  for (size_t s = 0; s < options.conditions.size(); ++s) {
    Rng rng(HashCombine(Mix64(seed ^ 0x65787072ULL), s + 1));
    Sample sample(static_cast<gdm::SampleId>(s + 1));
    sample.metadata.Add("dataType", "Expression");
    sample.metadata.Add("condition", options.conditions[s]);
    bool induced = options.conditions[s] != "control";
    for (size_t g = 0; g < catalog.genes.size(); ++g) {
      const Gene& gene = catalog.genes[g];
      double fpkm = baseline[g] * std::exp(rng.Normal(0.0, 0.2));
      if (induced && diff[g]) {
        // Half the differential genes go up, half down.
        double fc = std::pow(2.0, options.diff_log2fc);
        fpkm = (g % 2 == 0) ? fpkm * fc : fpkm / fc;
      }
      GenomicRegion r(gene.chrom, gene.left, gene.right, gene.strand);
      r.values.push_back(Value(gene.id));
      r.values.push_back(Value(fpkm));
      sample.regions.push_back(std::move(r));
    }
    sample.SortNow();
    ds.AddSample(std::move(sample));
  }
  return ds;
}

gdm::Dataset GenerateCtcfLoops(const GenomeAssembly& genome,
                               const CtcfLoopOptions& options, uint64_t seed,
                               const std::string& name) {
  RegionSchema schema;
  (void)schema.AddAttr("loop_id", AttrType::kString);
  (void)schema.AddAttr("score", AttrType::kDouble);
  Dataset ds(name, schema);

  Rng rng(Mix64(seed) ^ 0x6c6f6f70ULL);
  Sample sample(1);
  sample.metadata.Add("dataType", "ChiaPet");
  sample.metadata.Add("factor", "CTCF");
  for (size_t l = 0; l < options.num_loops; ++l) {
    auto pos = RandomPosition(genome, &rng);
    int64_t len = std::min<int64_t>(
        options.loop_len_max,
        std::max<int64_t>(
            10000, static_cast<int64_t>(rng.Exponential(
                       1.0 / static_cast<double>(options.loop_len_mean)))));
    GenomicRegion r =
        ClampedRegion(genome, pos.first, pos.second + len / 2, len,
                      Strand::kNone);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "LOOP%06zu", l);
    r.values.push_back(Value(std::string(buf)));
    r.values.push_back(Value(std::abs(rng.Normal(10.0, 5.0))));
    sample.regions.push_back(std::move(r));
  }
  sample.SortNow();
  ds.AddSample(std::move(sample));
  return ds;
}

gdm::Dataset GenerateCtcfAnchors(const GenomeAssembly& genome,
                                 const CtcfLoopOptions& options, uint64_t seed,
                                 const std::string& name) {
  // Re-derive the loops deterministically, then emit their anchor peaks.
  Dataset loops = GenerateCtcfLoops(genome, options, seed, "tmp");
  RegionSchema schema;
  (void)schema.AddAttr("name", AttrType::kString);
  (void)schema.AddAttr("score", AttrType::kDouble);
  (void)schema.AddAttr("signal", AttrType::kDouble);
  (void)schema.AddAttr("p_value", AttrType::kDouble);
  Dataset ds(name, schema);
  Sample sample(1);
  sample.metadata.Add("dataType", "ChipSeq");
  sample.metadata.Add("antibody", "CTCF");
  Rng rng(Mix64(seed) ^ 0x616e6368ULL);
  size_t i = 0;
  for (const auto& loop : loops.sample(0).regions) {
    for (int side = 0; side < 2; ++side) {
      int64_t center = (side == 0) ? loop.left : loop.right;
      GenomicRegion r(loop.chrom,
                      std::max<int64_t>(0, center - options.anchor_len / 2),
                      center + options.anchor_len / 2, Strand::kNone);
      double signal = std::abs(rng.Normal(12.0, 3.0));
      char buf[48];
      std::snprintf(buf, sizeof(buf), "ctcf_%zu_%d", i, side);
      r.values.push_back(Value(std::string(buf)));
      r.values.push_back(Value(std::min(1000.0, signal * 100.0)));
      r.values.push_back(Value(signal));
      r.values.push_back(Value(std::exp(-signal)));
      sample.regions.push_back(std::move(r));
    }
    ++i;
  }
  sample.SortNow();
  ds.AddSample(std::move(sample));
  return ds;
}

}  // namespace gdms::sim
