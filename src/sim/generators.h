#ifndef GDMS_SIM_GENERATORS_H_
#define GDMS_SIM_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "gdm/dataset.h"

namespace gdms::sim {

/// \brief Synthetic workload generators.
///
/// Stand-ins for the repositories the paper evaluates against (ENCODE, TCGA,
/// UCSC annotations; see DESIGN.md "Substitutions"). All generators are
/// deterministic in (options, seed) so every experiment is reproducible.

/// One gene of the synthetic gene catalog.
struct Gene {
  int32_t chrom;
  int64_t left;
  int64_t right;
  gdm::Strand strand;
  std::string id;

  /// Transcription start site (strand-aware: right end for '-').
  int64_t Tss() const {
    return strand == gdm::Strand::kMinus ? right : left;
  }
};

/// \brief The shared gene catalog: genes placed along an assembly with
/// exponential inter-gene gaps. Annotations, expression and replication
/// datasets all derive from one catalog so joins across them are meaningful.
struct GeneCatalog {
  std::vector<Gene> genes;
};

GeneCatalog GenerateGenes(const gdm::GenomeAssembly& genome, size_t num_genes,
                          uint64_t seed);

/// Options for ENCODE-like ChIP-seq peak datasets.
struct PeakDatasetOptions {
  size_t num_samples = 16;
  size_t peaks_per_sample = 10000;
  int64_t peak_len_mean = 400;
  int64_t peak_len_sd = 120;
  /// Fraction of peaks drawn near shared hotspots instead of uniformly;
  /// hotspots give samples realistic co-localization.
  double hotspot_fraction = 0.6;
  size_t num_hotspots = 2000;
  /// Metadata vocabularies (cycled/sampled per sample).
  std::vector<std::string> antibodies = {"CTCF", "POLR2A", "H3K27ac",
                                         "H3K4me1", "H3K4me3", "EP300"};
  std::vector<std::string> cells = {"HeLa-S3", "K562", "GM12878", "HepG2",
                                    "IMR90"};
  /// Value of the dataType metadata attribute (the Section 2 query selects
  /// dataType == 'ChipSeq').
  std::string data_type = "ChipSeq";
};

/// Schema: name:STRING, score:DOUBLE, signal:DOUBLE, p_value:DOUBLE.
/// Metadata per sample: dataType, antibody, cell, karyotype, sex, lab.
gdm::Dataset GeneratePeakDataset(const gdm::GenomeAssembly& genome,
                                 const PeakDatasetOptions& options,
                                 uint64_t seed,
                                 const std::string& name = "ENCODE");

/// Options for the UCSC-like annotation dataset.
struct AnnotationOptions {
  /// Promoter window around the TSS (upstream, downstream).
  int64_t promoter_upstream = 2000;
  int64_t promoter_downstream = 200;
  size_t num_enhancers = 5000;
  int64_t enhancer_len_mean = 600;
};

/// One dataset with three samples — genes, promoters, enhancers — each
/// tagged with metadata annType (the Section 2 query selects
/// annType == 'promoter'). Schema: name:STRING, ann_type:STRING.
gdm::Dataset GenerateAnnotations(const gdm::GenomeAssembly& genome,
                                 const GeneCatalog& catalog,
                                 const AnnotationOptions& options,
                                 uint64_t seed,
                                 const std::string& name = "ANNOTATIONS");

/// Options for TCGA-like mutation datasets.
struct MutationOptions {
  size_t num_samples = 8;
  size_t mutations_per_sample = 20000;
  /// Fraction of mutations concentrated in fragile sites (shared with the
  /// breakpoint generator when the same seed is used — the Section 3
  /// correlation study needs mutations to co-locate with breaks).
  double fragile_fraction = 0.5;
  size_t num_fragile_sites = 300;
  std::vector<std::string> conditions = {"control", "oncogene_induced"};
};

/// Schema: mut_type:STRING, vaf:DOUBLE. Metadata: dataType=Mutation,
/// condition, patient.
gdm::Dataset GenerateMutations(const gdm::GenomeAssembly& genome,
                               const MutationOptions& options, uint64_t seed,
                               const std::string& name = "MUTATIONS");

/// Options for DNA break-point datasets (Section 3, problem 1).
struct BreakpointOptions {
  size_t num_samples = 4;
  size_t breaks_per_sample = 5000;
  double fragile_fraction = 0.7;
  size_t num_fragile_sites = 300;
  std::vector<std::string> conditions = {"control", "oncogene_induced"};
};

/// Schema: score:DOUBLE. Metadata: dataType=BreakPoint, condition.
gdm::Dataset GenerateBreakpoints(const gdm::GenomeAssembly& genome,
                                 const BreakpointOptions& options,
                                 uint64_t seed,
                                 const std::string& name = "BREAKS");

/// Options for replication-timing domain datasets.
struct ReplicationOptions {
  int64_t domain_len_mean = 1000000;
  std::vector<std::string> conditions = {"control", "oncogene_induced"};
  /// Fraction of domains whose timing shifts between conditions.
  double shift_fraction = 0.15;
};

/// One sample per condition; domains tile each chromosome. Schema:
/// rt_value:DOUBLE (positive early, negative late). Metadata:
/// dataType=ReplicationTiming, condition.
gdm::Dataset GenerateReplicationTiming(const gdm::GenomeAssembly& genome,
                                       const ReplicationOptions& options,
                                       uint64_t seed,
                                       const std::string& name = "REPTIME");

/// Options for gene-expression datasets over a gene catalog.
struct ExpressionOptions {
  std::vector<std::string> conditions = {"control", "oncogene_induced"};
  /// Fraction of genes differentially expressed between conditions.
  double diff_fraction = 0.1;
  double diff_log2fc = 2.0;
};

/// One sample per condition; one region per gene. Schema: gene:STRING,
/// fpkm:DOUBLE. Metadata: dataType=Expression, condition.
gdm::Dataset GenerateExpression(const gdm::GenomeAssembly& genome,
                                const GeneCatalog& catalog,
                                const ExpressionOptions& options,
                                uint64_t seed,
                                const std::string& name = "EXPRESSION");

/// Options for CTCF-loop datasets (Figure 3).
struct CtcfLoopOptions {
  size_t num_loops = 3000;
  int64_t loop_len_mean = 200000;
  int64_t loop_len_max = 1000000;
  int64_t anchor_len = 400;
};

/// Two samples: "loops" (regions spanning anchor to anchor; schema
/// loop_id:STRING, score:DOUBLE) — loops are "short CTCF loops" enclosing
/// enhancer/promoter pairs — and the anchors as CTCF peaks are produced by
/// GenerateCtcfAnchors below.
gdm::Dataset GenerateCtcfLoops(const gdm::GenomeAssembly& genome,
                               const CtcfLoopOptions& options, uint64_t seed,
                               const std::string& name = "CTCF_LOOPS");

/// The two anchor peaks of every loop generated with the same options+seed.
/// Schema: name:STRING, score:DOUBLE, signal:DOUBLE, p_value:DOUBLE
/// (peak-compatible). Metadata: dataType=ChipSeq, antibody=CTCF.
gdm::Dataset GenerateCtcfAnchors(const gdm::GenomeAssembly& genome,
                                 const CtcfLoopOptions& options, uint64_t seed,
                                 const std::string& name = "CTCF_PEAKS");

}  // namespace gdms::sim

#endif  // GDMS_SIM_GENERATORS_H_
