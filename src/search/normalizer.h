#ifndef GDMS_SEARCH_NORMALIZER_H_
#define GDMS_SEARCH_NORMALIZER_H_

#include <string>
#include <vector>

#include "gdm/dataset.h"
#include "search/ontology.h"

namespace gdms::search {

/// What one normalization pass did.
struct NormalizeStats {
  size_t samples = 0;
  size_t values_rewritten = 0;   ///< raw values replaced by canonical terms
  size_t terms_added = 0;        ///< closure terms materialized as metadata
};

/// \brief Ontology-driven metadata normalization.
///
/// Section 4.3: "All the processed datasets available in the above data
/// sources will be provided of compatible metadata." Consortia spell the
/// same concept differently ("ChIP-seq", "ChipSeq", "chip_seq"); the
/// normalizer rewrites every metadata value that the ontology can resolve
/// to its canonical term, and optionally materializes the semantic closure
/// under the `_term` attribute so cross-repository joinby/selection works
/// on compatible vocabulary.
class MetadataNormalizer {
 public:
  explicit MetadataNormalizer(const Ontology* ontology)
      : ontology_(ontology) {}

  /// Rewrites resolvable values in place; with `materialize_closure`, adds
  /// one `_term` entry per closure term of every resolved value.
  NormalizeStats Normalize(gdm::Dataset* dataset,
                           bool materialize_closure = true) const;

 private:
  const Ontology* ontology_;
};

}  // namespace gdms::search

#endif  // GDMS_SEARCH_NORMALIZER_H_
