#include "search/internet_of_genomes.h"

#include <algorithm>

#include "io/gdm_format.h"

namespace gdms::search::iog {

std::string Host::Publish(gdm::Dataset dataset, gdm::Metadata metadata,
                          bool is_public) {
  PublishedDataset entry;
  entry.url = "gdm://" + name_ + "/" + dataset.name();
  entry.metadata = std::move(metadata);
  entry.dataset = std::move(dataset);
  entry.is_public = is_public;
  std::string url = entry.url;
  published_.push_back(std::move(entry));
  return url;
}

std::vector<std::pair<std::string, gdm::Metadata>> Host::ListPublic() const {
  std::vector<std::pair<std::string, gdm::Metadata>> out;
  for (const auto& e : published_) {
    if (e.is_public) out.push_back({e.url, e.metadata});
  }
  return out;
}

Result<std::string> Host::Download(const std::string& url,
                                   uint64_t* bytes_out) const {
  for (const auto& e : published_) {
    if (e.url == url) {
      std::string payload = io::WriteGdmString(e.dataset);
      if (bytes_out != nullptr) *bytes_out += payload.size();
      return payload;
    }
  }
  return Status::NotFound("no published dataset at " + url);
}

void SearchService::AddHost(const Host* host) { hosts_.push_back(host); }

Result<CrawlStats> SearchService::Crawl(uint64_t cache_budget_bytes) {
  CrawlStats stats;
  entries_.clear();
  for (const Host* host : hosts_) {
    ++stats.hosts_visited;
    for (const auto& [url, metadata] : host->ListPublic()) {
      Entry entry;
      entry.url = url;
      entry.host = host->name();
      entry.metadata = metadata;
      entry.terms = ontology_.Annotate(metadata);
      for (const auto& e : metadata.entries()) {
        stats.metadata_bytes += e.attr.size() + e.value.size();
      }
      // Non-intrusive caching: fetch the dataset only when it fits the
      // per-dataset budget.
      if (cache_budget_bytes > 0 && cache_.find(url) == cache_.end()) {
        uint64_t bytes = 0;
        auto payload = host->Download(url, &bytes);
        if (payload.ok() && bytes <= cache_budget_bytes) {
          stats.dataset_bytes += bytes;
          cache_.emplace(url, std::move(payload).value());
          ++stats.datasets_cached;
        }
      }
      entries_.push_back(std::move(entry));
      ++stats.entries_indexed;
    }
  }
  return stats;
}

std::vector<Snippet> SearchService::Search(const std::string& query,
                                           size_t limit) const {
  auto tokens = TokenizeMeta(query);
  // Expand each query token through the ontology: a token naming a term (or
  // synonym) matches every descendant annotation.
  std::vector<std::set<std::string>> expanded;
  for (const auto& tok : tokens) {
    std::set<std::string> terms;
    std::string resolved = ontology_.Resolve(tok);
    if (!resolved.empty()) {
      terms = ontology_.Descendants(resolved);
    }
    terms.insert(tok);
    expanded.push_back(std::move(terms));
  }
  std::vector<Snippet> out;
  for (const auto& entry : entries_) {
    double score = 0;
    // Flat term matching: each query token scores by ontology-term hits
    // plus raw text hits in metadata values.
    for (size_t t = 0; t < tokens.size(); ++t) {
      bool term_hit = false;
      for (const auto& term : expanded[t]) {
        if (entry.terms.count(term)) {
          term_hit = true;
          break;
        }
      }
      if (term_hit) score += 2.0;
      for (const auto& e : entry.metadata.entries()) {
        auto words = TokenizeMeta(e.value);
        if (std::find(words.begin(), words.end(), tokens[t]) != words.end()) {
          score += 1.0;
          break;
        }
      }
    }
    if (score > 0) {
      Snippet snippet;
      snippet.url = entry.url;
      snippet.host = entry.host;
      snippet.score = score;
      snippet.cached = cache_.count(entry.url) > 0;
      out.push_back(std::move(snippet));
    }
  }
  std::sort(out.begin(), out.end(), [](const Snippet& a, const Snippet& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.url < b.url;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

Result<gdm::Dataset> SearchService::FetchDataset(const std::string& url,
                                                 uint64_t* bytes_transferred) {
  auto cached = cache_.find(url);
  if (cached != cache_.end()) {
    return io::ReadGdmString(cached->second);  // local copy, no transfer
  }
  for (const Host* host : hosts_) {
    uint64_t bytes = 0;
    auto payload = host->Download(url, &bytes);
    if (payload.ok()) {
      if (bytes_transferred != nullptr) *bytes_transferred += bytes;
      return io::ReadGdmString(payload.value());
    }
  }
  return Status::NotFound("no host serves " + url);
}

}  // namespace gdms::search::iog
