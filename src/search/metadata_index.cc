#include "search/metadata_index.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>
#include <unordered_map>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gdms::search {

std::vector<std::string> TokenizeMeta(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    // '_' is a word character: ontology term ids ("cancer_cell_line") and
    // condition labels ("oncogene_induced") must stay whole.
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      out.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

void MetadataIndex::IndexTerm(const std::string& term, uint32_t doc) {
  auto& list = postings_[term];
  if (!list.empty() && list.back().doc == doc) {
    ++list.back().tf;
  } else {
    list.push_back({doc, 1});
  }
}

void MetadataIndex::AddDataset(const gdm::Dataset& dataset) {
  for (const auto& s : dataset.samples()) {
    uint32_t doc = static_cast<uint32_t>(docs_.size());
    docs_.push_back({dataset.name(), s.id});
    size_t terms = 0;
    for (const auto& e : s.metadata.entries()) {
      for (const auto& tok : TokenizeMeta(e.attr)) {
        IndexTerm(tok, doc);
        ++terms;
      }
      for (const auto& tok : TokenizeMeta(e.value)) {
        IndexTerm(tok, doc);
        ++terms;
      }
      pairs_[{e.attr, e.value}].push_back(doc);
    }
    doc_norm_.push_back(
        std::sqrt(static_cast<double>(std::max<size_t>(1, terms))));
  }
  static obs::Counter* indexed = obs::MetricsRegistry::Global().GetCounter(
      "gdms_search_docs_indexed_total");
  indexed->Add(dataset.num_samples());
}

std::vector<SearchHit> MetadataIndex::Search(const std::string& query,
                                             size_t limit) const {
  static obs::Counter* queries =
      obs::MetricsRegistry::Global().GetCounter("gdms_search_queries_total");
  static obs::Histogram* latency = obs::MetricsRegistry::Global().GetHistogram(
      "gdms_search_query_latency_us");
  queries->Add();
  obs::Tracer& tracer = obs::Tracer::Global();
  int64_t start_ns = tracer.NowNs();
  obs::Span span =
      tracer.StartSpan("search:" + query, "search", tracer.current_parent());
  std::unordered_map<uint32_t, double> scores;
  double n_docs = static_cast<double>(std::max<size_t>(1, docs_.size()));
  size_t matched_terms = 0;
  for (const auto& term : TokenizeMeta(query)) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    ++matched_terms;
    double idf =
        std::log(1.0 + n_docs / static_cast<double>(it->second.size()));
    for (const auto& p : it->second) {
      scores[p.doc] += (1.0 + std::log(static_cast<double>(p.tf))) * idf /
                       doc_norm_[p.doc];
    }
  }
  std::vector<SearchHit> hits;
  hits.reserve(scores.size());
  for (const auto& [doc, score] : scores) {
    hits.push_back({docs_[doc], score});
  }
  std::sort(hits.begin(), hits.end(),
            [](const SearchHit& a, const SearchHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.ref < b.ref;
            });
  if (hits.size() > limit) hits.resize(limit);
  latency->Record(static_cast<uint64_t>((tracer.NowNs() - start_ns) / 1000));
  if (span.active()) {
    span.AddAttr("terms", static_cast<double>(matched_terms));
    span.AddAttr("hits", static_cast<double>(hits.size()));
  }
  return hits;
}

std::vector<SampleRef> MetadataIndex::Lookup(const std::string& attr,
                                             const std::string& value) const {
  std::vector<SampleRef> out;
  auto it = pairs_.find({attr, value});
  if (it == pairs_.end()) return out;
  for (uint32_t doc : it->second) out.push_back(docs_[doc]);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

PrEval MetadataIndex::Evaluate(const std::vector<SearchHit>& hits,
                               const std::vector<SampleRef>& relevant) {
  PrEval eval;
  if (hits.empty() || relevant.empty()) {
    eval.recall = relevant.empty() ? 1.0 : 0.0;
    eval.precision = hits.empty() ? 1.0 : 0.0;
    if (hits.empty() && relevant.empty()) eval.f1 = 1.0;
    return eval;
  }
  std::set<SampleRef> rel(relevant.begin(), relevant.end());
  size_t correct = 0;
  for (const auto& h : hits) {
    if (rel.count(h.ref)) ++correct;
  }
  eval.precision =
      static_cast<double>(correct) / static_cast<double>(hits.size());
  eval.recall = static_cast<double>(correct) / static_cast<double>(rel.size());
  if (eval.precision + eval.recall > 0) {
    eval.f1 = 2 * eval.precision * eval.recall / (eval.precision + eval.recall);
  }
  return eval;
}

}  // namespace gdms::search
