#include "search/normalizer.h"

namespace gdms::search {

NormalizeStats MetadataNormalizer::Normalize(gdm::Dataset* dataset,
                                             bool materialize_closure) const {
  NormalizeStats stats;
  for (auto& sample : *dataset->mutable_samples()) {
    ++stats.samples;
    gdm::Metadata normalized;
    for (const auto& entry : sample.metadata.entries()) {
      std::string term = ontology_->Resolve(entry.value);
      if (term.empty()) {
        normalized.Add(entry.attr, entry.value);
        continue;
      }
      if (term != entry.value) ++stats.values_rewritten;
      normalized.Add(entry.attr, term);
      if (materialize_closure) {
        for (const auto& ancestor : ontology_->Closure(term)) {
          if (!normalized.HasPair("_term", ancestor)) {
            normalized.Add("_term", ancestor);
            ++stats.terms_added;
          }
        }
      }
    }
    sample.metadata = std::move(normalized);
  }
  return stats;
}

}  // namespace gdms::search
