#ifndef GDMS_SEARCH_ONTOLOGY_H_
#define GDMS_SEARCH_ONTOLOGY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "gdm/metadata.h"

namespace gdms::search {

/// \brief A small biomedical is-a ontology with semantic closure.
///
/// Stand-in for UMLS (paper, Section 4.3): metadata values are annotated
/// with ontology terms; the *semantic closure* adds every ancestor term, so
/// a query for "cancer cell line" also matches samples annotated "K562".
/// Term ids are lower-case strings; each term may carry synonyms that map
/// raw metadata values onto it.
class Ontology {
 public:
  Ontology() = default;

  /// Adds a term (idempotent).
  void AddTerm(const std::string& term);

  /// Declares `child` is-a `parent` (both added if absent). Cycles are
  /// rejected.
  Status AddIsA(const std::string& child, const std::string& parent);

  /// Maps a raw metadata value (case-insensitive) onto a term.
  void AddSynonym(const std::string& raw_value, const std::string& term);

  bool HasTerm(const std::string& term) const;
  size_t num_terms() const { return parents_.size(); }

  /// The term a raw value maps to ("" if unmapped). Falls back to the value
  /// itself when it names a term directly.
  std::string Resolve(const std::string& raw_value) const;

  /// All ancestors of a term including itself (the semantic closure).
  std::set<std::string> Closure(const std::string& term) const;

  /// All descendants of a term including itself (used for query expansion:
  /// searching "cancer_cell_line" must match samples annotated "k562").
  std::set<std::string> Descendants(const std::string& term) const;

  /// Annotates sample metadata: resolves every value, expands closures and
  /// returns the full term set.
  std::set<std::string> Annotate(const gdm::Metadata& metadata) const;

  /// \brief The built-in demonstration ontology: assay types, cell lines,
  /// tissues and conditions found in the synthetic workloads.
  static Ontology BuiltinBio();

 private:
  bool ReachesAncestor(const std::string& from,
                       const std::string& target) const;

  std::map<std::string, std::set<std::string>> parents_;
  std::map<std::string, std::set<std::string>> children_;
  std::map<std::string, std::string> synonyms_;
};

}  // namespace gdms::search

#endif  // GDMS_SEARCH_ONTOLOGY_H_
