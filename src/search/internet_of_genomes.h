#ifndef GDMS_SEARCH_INTERNET_OF_GENOMES_H_
#define GDMS_SEARCH_INTERNET_OF_GENOMES_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "gdm/dataset.h"
#include "search/metadata_index.h"
#include "search/ontology.h"

namespace gdms::search::iog {

/// \brief The "Internet of Genomes" simulation (paper, Section 4.5).
///
/// Research hosts publish links to genomic data with metadata following a
/// simple publishing protocol; a third-party crawler periodically visits
/// hosts, downloads metadata (and optionally datasets), and feeds a search
/// service that answers queries with snippets indicating whether each
/// dataset is already cached in the service's repository.

/// One published entry on a host: a stable URL, searchable metadata, and
/// the dataset behind the link.
struct PublishedDataset {
  std::string url;
  gdm::Metadata metadata;
  gdm::Dataset dataset;
  bool is_public = true;  ///< visible to crawlers
};

/// \brief A research-center host exposing published links.
class Host {
 public:
  explicit Host(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Publishes a dataset; the URL is derived from host and dataset name.
  /// Returns the URL.
  std::string Publish(gdm::Dataset dataset, gdm::Metadata metadata,
                      bool is_public = true);

  /// Crawl entry point: URLs + metadata of public entries (the cheap part
  /// of the protocol; no region data moves).
  std::vector<std::pair<std::string, gdm::Metadata>> ListPublic() const;

  /// Download of one dataset by URL (the expensive part). Counts bytes.
  Result<std::string> Download(const std::string& url,
                               uint64_t* bytes_out) const;

  size_t num_published() const { return published_.size(); }

 private:
  std::string name_;
  std::vector<PublishedDataset> published_;
};

/// One search-result snippet.
struct Snippet {
  std::string url;
  std::string host;
  double score = 0;
  bool cached = false;  ///< dataset already stored at the search service
};

/// Crawl/caching statistics.
struct CrawlStats {
  size_t hosts_visited = 0;
  size_t entries_indexed = 0;
  size_t datasets_cached = 0;
  uint64_t metadata_bytes = 0;
  uint64_t dataset_bytes = 0;
};

/// \brief Crawler + index + snippet search, in one service.
class SearchService {
 public:
  SearchService() : ontology_(Ontology::BuiltinBio()) {}

  /// Registers a host for crawling (not owned).
  void AddHost(const Host* host);

  /// Visits every host, indexes public metadata; datasets whose serialized
  /// size is at most `cache_budget_bytes` (per dataset) are downloaded and
  /// cached. Returns crawl statistics.
  Result<CrawlStats> Crawl(uint64_t cache_budget_bytes = 0);

  /// Keyword search over crawled metadata (ontology-expanded: query terms
  /// match any synonym/descendant annotation). Returns ranked snippets.
  std::vector<Snippet> Search(const std::string& query,
                              size_t limit = 20) const;

  /// Asynchronous-download simulation: fetches a dataset by URL from its
  /// host (cached copies are served locally at zero transfer cost).
  /// `bytes_transferred` reports the wire cost.
  Result<gdm::Dataset> FetchDataset(const std::string& url,
                                    uint64_t* bytes_transferred);

  size_t num_indexed() const { return entries_.size(); }
  size_t num_cached() const { return cache_.size(); }

 private:
  struct Entry {
    std::string url;
    std::string host;
    gdm::Metadata metadata;
    std::set<std::string> terms;  ///< ontology annotation (with closure)
  };

  std::vector<const Host*> hosts_;
  std::vector<Entry> entries_;
  std::map<std::string, std::string> cache_;  // url -> serialized dataset
  Ontology ontology_;
};

}  // namespace gdms::search::iog

#endif  // GDMS_SEARCH_INTERNET_OF_GENOMES_H_
