#ifndef GDMS_SEARCH_REGION_SEARCH_H_
#define GDMS_SEARCH_REGION_SEARCH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "gdm/dataset.h"
#include "interval/interval_tree.h"

namespace gdms::search {

/// One computable region feature.
enum class RegionFeature {
  kLength,         ///< region length in bases
  kAttrValue,      ///< numeric value of a named attribute
  kOverlapCount,   ///< overlaps with a caller-provided reference track
  kDistanceToRef,  ///< genometric distance to nearest reference region
};

/// A weighted feature term of the ranking score.
struct FeatureWeight {
  RegionFeature feature = RegionFeature::kLength;
  double weight = 1.0;
  /// For kAttrValue: the schema attribute to read.
  std::string attr;
};

/// A ranked region hit.
struct RegionHit {
  gdm::SampleId sample = 0;
  gdm::GenomicRegion region;
  double score = 0;
  std::vector<double> features;  ///< in FeatureWeight order
};

/// \brief Feature-based region search (paper, Section 4.5).
///
/// "The user selects interesting regions, then provides information about
/// the features of interest, then those features are computed, and finally
/// regions are ordered based on their computed features" — search and
/// feature evaluation intertwined. The reference track (for overlap and
/// distance features) is indexed once; candidate features are computed on
/// demand, only for regions that pass the candidate filter.
class RegionSearch {
 public:
  /// `reference` anchors overlap/distance features; may be empty.
  explicit RegionSearch(std::vector<gdm::GenomicRegion> reference);

  /// Scores every region of every sample of `dataset` with the weighted
  /// feature sum (features are z-scaled by their observed min/max so weights
  /// are comparable) and returns the top `k`.
  Result<std::vector<RegionHit>> TopK(const gdm::Dataset& dataset,
                                      const std::vector<FeatureWeight>& weights,
                                      size_t k) const;

  size_t reference_size() const { return reference_.size(); }

 private:
  std::vector<gdm::GenomicRegion> reference_;
  interval::IntervalIndex index_;
};

}  // namespace gdms::search

#endif  // GDMS_SEARCH_REGION_SEARCH_H_
