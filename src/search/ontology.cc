#include "search/ontology.h"

#include <vector>

#include "common/string_util.h"

namespace gdms::search {

void Ontology::AddTerm(const std::string& term) {
  parents_.try_emplace(ToLower(term));
  children_.try_emplace(ToLower(term));
}

bool Ontology::ReachesAncestor(const std::string& from,
                               const std::string& target) const {
  if (from == target) return true;
  auto it = parents_.find(from);
  if (it == parents_.end()) return false;
  for (const auto& p : it->second) {
    if (ReachesAncestor(p, target)) return true;
  }
  return false;
}

Status Ontology::AddIsA(const std::string& child, const std::string& parent) {
  std::string c = ToLower(child);
  std::string p = ToLower(parent);
  if (c == p || ReachesAncestor(p, c)) {
    return Status::InvalidArgument("is-a edge would create a cycle: " + c +
                                   " -> " + p);
  }
  AddTerm(c);
  AddTerm(p);
  parents_[c].insert(p);
  children_[p].insert(c);
  return Status::OK();
}

void Ontology::AddSynonym(const std::string& raw_value,
                          const std::string& term) {
  AddTerm(term);
  synonyms_[ToLower(raw_value)] = ToLower(term);
}

bool Ontology::HasTerm(const std::string& term) const {
  return parents_.count(ToLower(term)) > 0;
}

std::string Ontology::Resolve(const std::string& raw_value) const {
  std::string low = ToLower(raw_value);
  auto it = synonyms_.find(low);
  if (it != synonyms_.end()) return it->second;
  if (parents_.count(low)) return low;
  return "";
}

std::set<std::string> Ontology::Closure(const std::string& term) const {
  std::set<std::string> out;
  std::vector<std::string> stack = {ToLower(term)};
  while (!stack.empty()) {
    std::string t = std::move(stack.back());
    stack.pop_back();
    if (!parents_.count(t) || !out.insert(t).second) continue;
    for (const auto& p : parents_.at(t)) stack.push_back(p);
  }
  return out;
}

std::set<std::string> Ontology::Descendants(const std::string& term) const {
  std::set<std::string> out;
  std::vector<std::string> stack = {ToLower(term)};
  while (!stack.empty()) {
    std::string t = std::move(stack.back());
    stack.pop_back();
    if (!children_.count(t) || !out.insert(t).second) continue;
    for (const auto& c : children_.at(t)) stack.push_back(c);
  }
  return out;
}

std::set<std::string> Ontology::Annotate(const gdm::Metadata& metadata) const {
  std::set<std::string> out;
  for (const auto& e : metadata.entries()) {
    std::string term = Resolve(e.value);
    if (term.empty()) continue;
    auto closure = Closure(term);
    out.insert(closure.begin(), closure.end());
  }
  return out;
}

Ontology Ontology::BuiltinBio() {
  Ontology o;
  // Assays.
  (void)o.AddIsA("chip_seq", "sequencing_assay");
  (void)o.AddIsA("dnase_seq", "sequencing_assay");
  (void)o.AddIsA("rna_seq", "sequencing_assay");
  (void)o.AddIsA("chia_pet", "sequencing_assay");
  (void)o.AddIsA("wgs", "sequencing_assay");
  o.AddSynonym("ChipSeq", "chip_seq");
  o.AddSynonym("DnaSeq", "wgs");
  o.AddSynonym("ChiaPet", "chia_pet");
  o.AddSynonym("Expression", "rna_seq");
  o.AddSynonym("Mutation", "wgs");
  // Cell lines.
  (void)o.AddIsA("cancer_cell_line", "cell_line");
  (void)o.AddIsA("normal_cell_line", "cell_line");
  (void)o.AddIsA("k562", "cancer_cell_line");
  (void)o.AddIsA("hela_s3", "cancer_cell_line");
  (void)o.AddIsA("hepg2", "cancer_cell_line");
  (void)o.AddIsA("gm12878", "normal_cell_line");
  (void)o.AddIsA("imr90", "normal_cell_line");
  o.AddSynonym("K562", "k562");
  o.AddSynonym("HeLa-S3", "hela_s3");
  o.AddSynonym("HepG2", "hepg2");
  o.AddSynonym("GM12878", "gm12878");
  o.AddSynonym("IMR90", "imr90");
  // Targets.
  (void)o.AddIsA("ctcf", "transcription_factor");
  (void)o.AddIsA("polr2a", "transcription_factor");
  (void)o.AddIsA("ep300", "transcription_factor");
  (void)o.AddIsA("h3k27ac", "histone_mark");
  (void)o.AddIsA("h3k4me1", "histone_mark");
  (void)o.AddIsA("h3k4me3", "histone_mark");
  (void)o.AddIsA("transcription_factor", "protein_target");
  (void)o.AddIsA("histone_mark", "protein_target");
  o.AddSynonym("CTCF", "ctcf");
  o.AddSynonym("POLR2A", "polr2a");
  o.AddSynonym("EP300", "ep300");
  o.AddSynonym("H3K27ac", "h3k27ac");
  o.AddSynonym("H3K4me1", "h3k4me1");
  o.AddSynonym("H3K4me3", "h3k4me3");
  // Conditions.
  (void)o.AddIsA("cancer", "disease");
  o.AddSynonym("oncogene_induced", "cancer");
  return o;
}

}  // namespace gdms::search
