#ifndef GDMS_SEARCH_METADATA_INDEX_H_
#define GDMS_SEARCH_METADATA_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gdm/dataset.h"

namespace gdms::search {

/// Identifies one sample of one catalogued dataset.
struct SampleRef {
  std::string dataset;
  gdm::SampleId sample = 0;

  bool operator==(const SampleRef& other) const {
    return dataset == other.dataset && sample == other.sample;
  }
  bool operator<(const SampleRef& other) const {
    if (dataset != other.dataset) return dataset < other.dataset;
    return sample < other.sample;
  }
};

/// One ranked search hit.
struct SearchHit {
  SampleRef ref;
  double score = 0;
};

/// Precision/recall of a result list against a relevant set.
struct PrEval {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
};

/// \brief Inverted index over sample metadata for keyword search.
///
/// The "metadata search" service of Section 4.5: locate relevant samples
/// within very large bodies using keyword queries, evaluated with the
/// classical measures of precision and recall. Documents are samples; terms
/// are lower-cased metadata values and attribute names; ranking is TF-IDF
/// with cosine-style length normalization.
class MetadataIndex {
 public:
  MetadataIndex() = default;

  /// Indexes every sample of the dataset.
  void AddDataset(const gdm::Dataset& dataset);

  /// Number of indexed samples.
  size_t num_documents() const { return docs_.size(); }
  /// Number of distinct terms.
  size_t num_terms() const { return postings_.size(); }

  /// Ranked keyword search; multiple keywords are OR-combined with TF-IDF
  /// scoring. Returns up to `limit` hits, best first.
  std::vector<SearchHit> Search(const std::string& query,
                                size_t limit = 50) const;

  /// Exact attribute=value lookup (no ranking).
  std::vector<SampleRef> Lookup(const std::string& attr,
                                const std::string& value) const;

  /// Evaluates a result list: precision = |hits n relevant| / |hits|,
  /// recall = ... / |relevant|.
  static PrEval Evaluate(const std::vector<SearchHit>& hits,
                         const std::vector<SampleRef>& relevant);

 private:
  struct Posting {
    uint32_t doc = 0;
    uint32_t tf = 0;
  };

  void IndexTerm(const std::string& term, uint32_t doc);

  std::vector<SampleRef> docs_;
  std::vector<double> doc_norm_;  // term count per doc, for normalization
  std::map<std::string, std::vector<Posting>> postings_;
  std::map<std::pair<std::string, std::string>, std::vector<uint32_t>> pairs_;
};

/// Tokenizes metadata text: lower-cases and splits on non-alphanumerics.
std::vector<std::string> TokenizeMeta(const std::string& text);

}  // namespace gdms::search

#endif  // GDMS_SEARCH_METADATA_INDEX_H_
