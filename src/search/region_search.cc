#include "search/region_search.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "interval/sweep.h"

namespace gdms::search {

namespace {
using gdm::GenomicRegion;
}  // namespace

RegionSearch::RegionSearch(std::vector<GenomicRegion> reference)
    : reference_(std::move(reference)) {
  gdm::SortRegions(&reference_);
  index_ = interval::IntervalIndex(reference_);
}

Result<std::vector<RegionHit>> RegionSearch::TopK(
    const gdm::Dataset& dataset, const std::vector<FeatureWeight>& weights,
    size_t k) const {
  // Resolve attribute indexes up front.
  std::vector<size_t> attr_index(weights.size(), SIZE_MAX);
  for (size_t w = 0; w < weights.size(); ++w) {
    if (weights[w].feature == RegionFeature::kAttrValue) {
      auto idx = dataset.schema().IndexOf(weights[w].attr);
      if (!idx.has_value()) {
        return Status::InvalidArgument("feature attribute not in schema: " +
                                       weights[w].attr);
      }
      attr_index[w] = *idx;
    }
  }

  // Pass 1: compute raw features.
  std::vector<RegionHit> hits;
  for (const auto& s : dataset.samples()) {
    for (const auto& r : s.regions) {
      RegionHit hit;
      hit.sample = s.id;
      hit.region = r;
      hit.features.reserve(weights.size());
      for (size_t w = 0; w < weights.size(); ++w) {
        double v = 0;
        switch (weights[w].feature) {
          case RegionFeature::kLength:
            v = static_cast<double>(r.length());
            break;
          case RegionFeature::kAttrValue: {
            const auto& value = r.values[attr_index[w]];
            auto num = value.ToNumeric();
            v = num.ok() ? num.value() : 0.0;
            break;
          }
          case RegionFeature::kOverlapCount:
            v = static_cast<double>(
                index_.CountOverlaps(r.chrom, r.left, r.right));
            break;
          case RegionFeature::kDistanceToRef: {
            // Nearest reference distance via a single-element NearestK.
            std::vector<GenomicRegion> one = {r};
            int64_t best = std::numeric_limits<int64_t>::max();
            interval::NearestK(one, reference_, 1, [&](size_t, size_t j) {
              best = r.DistanceTo(reference_[j]);
            });
            v = best == std::numeric_limits<int64_t>::max()
                    ? 1e12
                    : static_cast<double>(best);
            break;
          }
        }
        hit.features.push_back(v);
      }
      hits.push_back(std::move(hit));
    }
  }
  if (hits.empty()) return hits;

  // Pass 2: min-max scale each feature, then weighted sum.
  for (size_t w = 0; w < weights.size(); ++w) {
    double lo = hits[0].features[w];
    double hi = lo;
    for (const auto& h : hits) {
      lo = std::min(lo, h.features[w]);
      hi = std::max(hi, h.features[w]);
    }
    double span = hi - lo;
    for (auto& h : hits) {
      double scaled = span > 0 ? (h.features[w] - lo) / span : 0.0;
      h.score += weights[w].weight * scaled;
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const RegionHit& a, const RegionHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.region.CoordLess(b.region);
            });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

}  // namespace gdms::search
