#ifndef GDMS_CORE_EXECUTOR_H_
#define GDMS_CORE_EXECUTOR_H_

#include <vector>

#include "common/status.h"
#include "core/plan.h"
#include "gdm/dataset.h"

namespace gdms::core {

/// Scheduling counters an executor may expose to the runner; the runner
/// snapshots them into RunStats after every program so callers (benches,
/// the shell) can report task/partition/shuffle figures without knowing the
/// concrete engine.
struct ExecutorStats {
  uint64_t tasks = 0;           ///< worker tasks executed
  uint64_t partitions = 0;      ///< genomic partitions scheduled
  uint64_t shuffle_bytes = 0;   ///< bytes through the shuffle codec
  uint64_t stage_barriers = 0;  ///< global stage barriers
};

/// \brief Strategy interface for evaluating one plan node.
///
/// The runner walks the DAG and hands each non-source node, with its already
/// computed input datasets, to an Executor. The ReferenceExecutor runs the
/// sequential semantics in core/operators.h; the engines in src/engine
/// override the data-parallel operators (paper, Section 4.2: "the two
/// implementations differ only in the encoding of about twenty GMQL language
/// components, while the compiler, logical optimizer, and APIs are
/// independent from the adoption of either framework").
class Executor {
 public:
  virtual ~Executor() = default;

  virtual Result<gdm::Dataset> Execute(
      const PlanNode& node, const std::vector<const gdm::Dataset*>& inputs) = 0;

  /// Scheduling counters accumulated since the last ResetStats; the
  /// sequential reference executor reports zeros.
  virtual ExecutorStats stats() const { return {}; }
  virtual void ResetStats() {}

  /// Columnar fast-path toggle (ExecOptions::columnar / --no-columnar).
  /// Executors without a columnar path ignore the setter and report false.
  virtual void set_columnar(bool /*on*/) {}
  virtual bool columnar() const { return false; }
};

/// Sequential reference executor.
class ReferenceExecutor : public Executor {
 public:
  Result<gdm::Dataset> Execute(
      const PlanNode& node,
      const std::vector<const gdm::Dataset*>& inputs) override;
};

}  // namespace gdms::core

#endif  // GDMS_CORE_EXECUTOR_H_
