#ifndef GDMS_CORE_EXECUTOR_H_
#define GDMS_CORE_EXECUTOR_H_

#include <vector>

#include "common/status.h"
#include "core/plan.h"
#include "gdm/dataset.h"

namespace gdms::core {

/// \brief Strategy interface for evaluating one plan node.
///
/// The runner walks the DAG and hands each non-source node, with its already
/// computed input datasets, to an Executor. The ReferenceExecutor runs the
/// sequential semantics in core/operators.h; the engines in src/engine
/// override the data-parallel operators (paper, Section 4.2: "the two
/// implementations differ only in the encoding of about twenty GMQL language
/// components, while the compiler, logical optimizer, and APIs are
/// independent from the adoption of either framework").
class Executor {
 public:
  virtual ~Executor() = default;

  virtual Result<gdm::Dataset> Execute(
      const PlanNode& node, const std::vector<const gdm::Dataset*>& inputs) = 0;
};

/// Sequential reference executor.
class ReferenceExecutor : public Executor {
 public:
  Result<gdm::Dataset> Execute(
      const PlanNode& node,
      const std::vector<const gdm::Dataset*>& inputs) override;
};

}  // namespace gdms::core

#endif  // GDMS_CORE_EXECUTOR_H_
