#include "core/executor.h"

#include <chrono>

#include "core/operators.h"
#include "obs/metrics.h"

namespace gdms::core {

namespace {

Result<gdm::Dataset> ExecuteOp(const PlanNode& node,
                               const std::vector<const gdm::Dataset*>& inputs) {
  auto arity = [&](size_t n) -> Status {
    if (inputs.size() != n) {
      return Status::Internal(std::string(OpKindName(node.kind)) +
                              " expects " + std::to_string(n) +
                              " inputs, got " +
                              std::to_string(inputs.size()));
    }
    return Status::OK();
  };
  switch (node.kind) {
    case OpKind::kSource:
      return Status::Internal("sources are resolved by the runner");
    case OpKind::kSelect:
      GDMS_RETURN_NOT_OK(arity(1));
      return Operators::Select(node.select, *inputs[0]);
    case OpKind::kProject:
      GDMS_RETURN_NOT_OK(arity(1));
      return Operators::Project(node.project, *inputs[0]);
    case OpKind::kExtend:
      GDMS_RETURN_NOT_OK(arity(1));
      return Operators::Extend(node.extend, *inputs[0]);
    case OpKind::kMerge:
      GDMS_RETURN_NOT_OK(arity(1));
      return Operators::Merge(node.merge, *inputs[0]);
    case OpKind::kGroup:
      GDMS_RETURN_NOT_OK(arity(1));
      return Operators::Group(node.group, *inputs[0]);
    case OpKind::kOrder:
      GDMS_RETURN_NOT_OK(arity(1));
      return Operators::Order(node.order, *inputs[0]);
    case OpKind::kUnion:
      GDMS_RETURN_NOT_OK(arity(2));
      return Operators::Union(*inputs[0], *inputs[1]);
    case OpKind::kDifference:
      GDMS_RETURN_NOT_OK(arity(2));
      return Operators::Difference(node.difference, *inputs[0], *inputs[1]);
    case OpKind::kSemijoin:
      GDMS_RETURN_NOT_OK(arity(2));
      return Operators::Semijoin(node.semijoin, *inputs[0], *inputs[1]);
    case OpKind::kJoin:
      GDMS_RETURN_NOT_OK(arity(2));
      return Operators::Join(node.join, *inputs[0], *inputs[1]);
    case OpKind::kMap:
      GDMS_RETURN_NOT_OK(arity(2));
      return Operators::Map(node.map, *inputs[0], *inputs[1]);
    case OpKind::kCover:
      GDMS_RETURN_NOT_OK(arity(1));
      return Operators::Cover(node.cover, *inputs[0]);
    case OpKind::kFused: {
      // The reference executor has no notion of partitions to pipe through,
      // so a fused chain runs stage by stage — semantically identical to the
      // unfused plan (the fusion equivalence tests rely on exactly this).
      if (node.fused_stages.empty()) {
        return Status::Internal("fused node with no stages");
      }
      GDMS_ASSIGN_OR_RETURN(gdm::Dataset current,
                            ExecuteOp(*node.fused_stages[0], inputs));
      for (size_t i = 1; i < node.fused_stages.size(); ++i) {
        std::vector<const gdm::Dataset*> stage_inputs = {&current};
        GDMS_ASSIGN_OR_RETURN(
            current, ExecuteOp(*node.fused_stages[i], stage_inputs));
      }
      return current;
    }
    case OpKind::kMaterialize: {
      GDMS_RETURN_NOT_OK(arity(1));
      gdm::Dataset out = *inputs[0];
      out.set_name(node.name);
      return out;
    }
  }
  return Status::Internal("unreachable operator kind");
}

}  // namespace

Result<gdm::Dataset> ReferenceExecutor::Execute(
    const PlanNode& node, const std::vector<const gdm::Dataset*>& inputs) {
  // Per-operator (not per-region) registry telemetry: a counter bump and a
  // latency sample per plan node is noise next to the node's own work.
  static obs::Counter* ops = obs::MetricsRegistry::Global().GetCounter(
      "gdms_core_reference_ops_total");
  static obs::Histogram* op_latency =
      obs::MetricsRegistry::Global().GetHistogram("gdms_core_op_latency_us");
  ops->Add();
  auto start = std::chrono::steady_clock::now();
  Result<gdm::Dataset> result = ExecuteOp(node, inputs);
  op_latency->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return result;
}

}  // namespace gdms::core
