#ifndef GDMS_CORE_PARSER_H_
#define GDMS_CORE_PARSER_H_

#include <map>
#include <string>

#include "common/status.h"
#include "core/plan.h"

namespace gdms::core {

/// \brief Parser for the GMQL surface syntax.
///
/// A program is a sequence of statements in the style of the paper's
/// Section 2 example:
///
///     PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
///     PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
///     RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
///     MATERIALIZE RESULT;
///
/// Statements:
///   VAR = OPNAME(params) OPERAND [OPERAND];
///   MATERIALIZE VAR [INTO name];
///
/// Operator parameter grammars (everything case-insensitive except
/// identifiers and string literals):
///   SELECT( [meta_pred] [; region: region_pred] )
///   PROJECT( attr, ... | * [; new_attr AS expr, ...] )
///   EXTEND( name AS FUNC(attr), ... )
///   MERGE( [groupby: attr] )
///   GROUP( attr [; name AS FUNC(attr), ...] )
///   ORDER( attr [DESC] [; TOP n] )
///   UNION( )
///   DIFFERENCE( [joinby: attr, ...] )
///   SEMIJOIN( attr, ... [; NOT] )   -- keep left samples sharing values
///                                      with some (NOT: no) right sample
///   JOIN( atom [AND atom ...] ; output [; joinby: attr, ...] )
///       atom   := DLE(n) | DLT(n) | DGE(n) | DGT(n) | MD(k) | UP | DOWN
///       output := LEFT | RIGHT | INT | CAT
///   MAP( [name AS FUNC(attr), ...] [; joinby: attr, ...] )
///   COVER( minAcc, maxAcc [; name AS FUNC(attr), ...] [; groupby: attr] )
///       minAcc/maxAcc := integer | ANY | ALL
///   FLAT / SUMMIT / HISTOGRAM — same parameters as COVER.
///
/// Predicates: comparisons (==, !=, <, <=, >, >=) combined with AND / OR /
/// NOT and parentheses; metadata comparisons take quoted or bare values,
/// region comparisons compare against typed constants. Projection
/// expressions support + - * / over attributes (left, right, len, schema
/// attrs) and numeric constants.
///
/// Unbound operand names are resolved as dataset sources; bound names refer
/// to earlier statements, sharing the plan subtree (so the optimizer's CSE
/// sees one node).
class Parser {
 public:
  /// Parses a full program. Every variable that is the target of
  /// MATERIALIZE becomes a sink; if no MATERIALIZE appears, the last
  /// assigned variable is materialized under its own name.
  static Result<Program> Parse(const std::string& text);
};

}  // namespace gdms::core

#endif  // GDMS_CORE_PARSER_H_
