#ifndef GDMS_CORE_RUNNER_H_
#define GDMS_CORE_RUNNER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/executor.h"
#include "core/optimizer.h"
#include "core/parser.h"
#include "core/plan.h"
#include "gdm/dataset.h"
#include "obs/dtrace.h"
#include "obs/profile.h"
#include "obs/query_log.h"
#include "obs/resource.h"

namespace gdms::core {

/// Knobs of one runner, settable per query batch. Mirrors the shell flags:
/// --no-optimize clears `optimize`, --no-fusion clears `fusion`.
struct ExecOptions {
  bool optimize = true;
  /// Fuse per-partition operator chains (MAP→SELECT, MAP→EXTEND,
  /// SELECT→PROJECT, ...) into single physical nodes so no intermediate
  /// dataset is materialized between them. Disable to A/B against the
  /// unfused plan — results are identical either way.
  bool fusion = true;
  /// Columnar batch kernels over each sample's cached RegionColumns for
  /// executors that support them (the parallel engine's flat pipelined MAP /
  /// DIFFERENCE / COVER). Disable (--no-columnar) to A/B the row-structured
  /// baseline — results are identical either way.
  bool columnar = true;
  /// Distributed-trace context of the enclosing query (minted at serve
  /// admission): invalid = untraced. RunProgram stamps the trace id into
  /// RunStats and tags the wall profile's query span with the parent span
  /// id, so the serve layer can rebase engine spans into the stitched
  /// trace.
  obs::TraceContext trace;
};

/// Per-query execution statistics.
struct RunStats {
  size_t operators_evaluated = 0;  ///< nodes executed (memoization excluded)
  size_t cache_hits = 0;           ///< nodes served from the memo table
  /// Operator-result datasets that were NOT a materialized output: the data
  /// movement fusion exists to eliminate. Fused chains materialize one
  /// dataset for the whole chain instead of one per logical operator.
  size_t intermediate_datasets = 0;
  OptimizerStats optimizer;
  FusionStats fusion;
  /// Executor scheduling counters for this program (tasks, partitions,
  /// shuffle bytes, stage barriers); zeros under the reference executor.
  ExecutorStats executor;
  /// Federation protocol activity observed while this query ran (deltas of
  /// the process-wide gdms_fed_* counters): remote hops triggered by the
  /// query show up here; zero for purely local execution. Attribution is
  /// per-process, so concurrent runners would cross-attribute.
  uint64_t fed_requests = 0;
  uint64_t fed_bytes_shipped = 0;
  uint64_t fed_bytes_received = 0;
  /// Byte accounting of this query (obs::QueryAccounting): cumulative bytes
  /// charged for operator outputs and engine scratch buffers, the
  /// high-water of live bytes, and the per-operator breakdown. Zeros when
  /// ResourceTracker accounting is disabled.
  uint64_t alloc_bytes = 0;
  uint64_t peak_bytes = 0;
  std::vector<obs::OpByteStat> op_bytes;
  double wall_seconds = 0;
  /// The query's span tree — one operator span per evaluated plan node with
  /// engine stage / federation spans nested beneath. Only populated while
  /// obs::Tracer::Global() is enabled; null otherwise.
  std::shared_ptr<const obs::Profile> profile;
  /// The distributed trace this run executed under (from
  /// ExecOptions::trace); invalid when untraced.
  obs::TraceId trace_id;
};

/// \brief End-to-end GMQL query runner.
///
/// Owns a registry of named source datasets, compiles GMQL text (or accepts
/// prebuilt Programs), optionally optimizes, and evaluates the DAG bottom-up
/// with per-node memoization through a pluggable Executor. Results are the
/// materialized datasets keyed by output name.
class QueryRunner {
 public:
  QueryRunner();
  /// Uses a caller-provided executor (e.g. a parallel engine); the executor
  /// must outlive the runner.
  explicit QueryRunner(Executor* executor);
  ~QueryRunner();
  QueryRunner(const QueryRunner&) = delete;
  QueryRunner& operator=(const QueryRunner&) = delete;
  /// Movable: the tracker callbacks point into sources_ map nodes, whose
  /// addresses survive a move of the map, so registrations stay valid and
  /// ownership of the tokens transfers with them.
  QueryRunner(QueryRunner&& other) noexcept;
  QueryRunner& operator=(QueryRunner&& other) noexcept;

  /// Registers a source dataset under its name (replacing any previous one)
  /// and publishes its storage residency to obs::ResourceTracker — the
  /// per-dataset gauges and the columnar-cache shed callback the memory
  /// budget drives.
  void RegisterDataset(gdm::Dataset dataset);

  /// Access to a registered dataset; nullptr if absent.
  const gdm::Dataset* FindDataset(const std::string& name) const;

  /// Names of all registered datasets.
  std::vector<std::string> DatasetNames() const;

  /// Serve-path hook: resolves source datasets from a shared catalog
  /// (serve::ServeCatalog snapshots) before falling back to the runner's
  /// own registry. Every snapshot the provider returns is pinned until the
  /// running program finishes, so a writer republishing the dataset
  /// mid-query cannot free storage this query is reading. A nullptr result
  /// falls through to RegisterDataset'd sources.
  using SourceProvider =
      std::function<std::shared_ptr<const gdm::Dataset>(const std::string&)>;
  void set_source_provider(SourceProvider provider) {
    provider_ = std::move(provider);
  }

  /// Whether RunProgram ends with a ResourceTracker::MaybeShed() pass
  /// (default on). Shedding is only safe with no query in flight, so the
  /// session manager turns this off on its worker runners and sheds at
  /// global quiesce instead.
  void set_shed_at_quiesce(bool on) { shed_at_quiesce_ = on; }

  void set_exec_options(ExecOptions options) { options_ = options; }
  const ExecOptions& exec_options() const { return options_; }

  void set_optimize(bool on) { options_.optimize = on; }
  bool optimize() const { return options_.optimize; }

  void set_fusion(bool on) { options_.fusion = on; }
  bool fusion() const { return options_.fusion; }

  void set_columnar(bool on) { options_.columnar = on; }
  bool columnar() const { return options_.columnar; }

  const RunStats& last_stats() const { return stats_; }

  /// Parses, optimizes and runs a GMQL program; returns the materialized
  /// datasets by output name.
  Result<std::map<std::string, gdm::Dataset>> Run(const std::string& gmql_text);

  /// Runs a prebuilt program (it is copied; optimization happens on the
  /// copy when enabled).
  Result<std::map<std::string, gdm::Dataset>> RunProgram(Program program);

 private:
  Result<const gdm::Dataset*> Evaluate(
      const PlanNode::Ptr& node,
      std::map<const PlanNode*, gdm::Dataset>* memo, uint64_t parent_span);

  /// Source lookup for one running program: the provider first (pinning the
  /// snapshot into pinned_), then the runner's own registry.
  const gdm::Dataset* ResolveSource(const std::string& name);

  std::unique_ptr<Executor> owned_executor_;
  Executor* executor_;
  std::map<std::string, gdm::Dataset> sources_;
  /// ResourceTracker registration per source dataset (map nodes are
  /// address-stable, so the tracker callbacks point into sources_).
  std::map<std::string, uint64_t> storage_tokens_;
  SourceProvider provider_;
  /// Catalog snapshots resolved by the current RunProgram; cleared when it
  /// returns. Holding them here keeps provider-served datasets alive for
  /// exactly the duration of the query.
  std::vector<std::shared_ptr<const gdm::Dataset>> pinned_;
  /// This query's byte account while RunProgram is on the stack; Evaluate
  /// charges operator outputs here directly (never through the process
  /// slot, which a concurrent runner may have republished).
  std::shared_ptr<obs::QueryAccounting> account_;
  bool shed_at_quiesce_ = true;
  ExecOptions options_;
  RunStats stats_;
};

/// Builds a query-log entry from one finished Run(): stats figures, the
/// attached profile (per-operator self-times, queue-wait/skew) and the
/// federation deltas. `error` non-empty marks the entry failed.
obs::QueryLogEntry MakeQueryLogEntry(const std::string& query,
                                     const RunStats& stats,
                                     const std::string& error = "");

}  // namespace gdms::core

#endif  // GDMS_CORE_RUNNER_H_
