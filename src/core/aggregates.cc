#include "core/aggregates.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace gdms::core {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kMedian:
      return "MEDIAN";
    case AggFunc::kStd:
      return "STD";
    case AggFunc::kBag:
      return "BAG";
  }
  return "?";
}

Result<AggFunc> ParseAggFunc(const std::string& name) {
  std::string up = ToLower(name);
  if (up == "count") return AggFunc::kCount;
  if (up == "sum") return AggFunc::kSum;
  if (up == "avg" || up == "mean") return AggFunc::kAvg;
  if (up == "min") return AggFunc::kMin;
  if (up == "max") return AggFunc::kMax;
  if (up == "median") return AggFunc::kMedian;
  if (up == "std" || up == "stddev") return AggFunc::kStd;
  if (up == "bag") return AggFunc::kBag;
  return Status::ParseError("unknown aggregate function: " + name);
}

gdm::AttrType AggOutputType(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return gdm::AttrType::kInt;
    case AggFunc::kBag:
      return gdm::AttrType::kString;
    default:
      return gdm::AttrType::kDouble;
  }
}

std::string AggregateSpec::ToString() const {
  std::string out = output_name;
  out += " AS ";
  out += AggFuncName(func);
  if (!input_attr.empty()) {
    out += "(";
    out += input_attr;
    out += ")";
  }
  return out;
}

void AggAccumulator::Add(const gdm::Value& v) {
  ++region_count_;
  if (v.is_null()) return;
  ++non_null_;
  if (func_ == AggFunc::kBag) {
    strings_.push_back(v.ToString());
    return;
  }
  auto num = v.ToNumeric();
  if (!num.ok()) return;  // non-numeric values are skipped by numeric aggs
  double x = num.value();
  sum_ += x;
  sum_sq_ += x * x;
  if (non_null_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  if (func_ == AggFunc::kMedian) numbers_.push_back(x);
}

gdm::Value AggAccumulator::Finish() const {
  using gdm::Value;
  switch (func_) {
    case AggFunc::kCount:
      return Value(region_count_);
    case AggFunc::kSum:
      return non_null_ == 0 ? Value::Null() : Value(sum_);
    case AggFunc::kAvg:
      return non_null_ == 0 ? Value::Null()
                            : Value(sum_ / static_cast<double>(non_null_));
    case AggFunc::kMin:
      return non_null_ == 0 ? Value::Null() : Value(min_);
    case AggFunc::kMax:
      return non_null_ == 0 ? Value::Null() : Value(max_);
    case AggFunc::kMedian: {
      if (numbers_.empty()) return Value::Null();
      std::vector<double> copy = numbers_;
      size_t mid = copy.size() / 2;
      std::nth_element(copy.begin(), copy.begin() + mid, copy.end());
      double hi = copy[mid];
      if (copy.size() % 2 == 1) return Value(hi);
      double lo = *std::max_element(copy.begin(), copy.begin() + mid);
      return Value((lo + hi) / 2.0);
    }
    case AggFunc::kStd: {
      if (non_null_ < 2) return non_null_ == 0 ? Value::Null() : Value(0.0);
      double n = static_cast<double>(non_null_);
      double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
      if (var < 0) var = 0;  // numeric noise
      return Value(std::sqrt(var));
    }
    case AggFunc::kBag: {
      std::vector<std::string> copy = strings_;
      std::sort(copy.begin(), copy.end());
      copy.erase(std::unique(copy.begin(), copy.end()), copy.end());
      return copy.empty() ? Value::Null() : Value(Join(copy, " "));
    }
  }
  return Value::Null();
}

Result<std::vector<size_t>> ResolveAggInputs(
    const std::vector<AggregateSpec>& specs, const gdm::RegionSchema& schema) {
  std::vector<size_t> out;
  out.reserve(specs.size());
  for (const auto& spec : specs) {
    if (spec.func == AggFunc::kCount && spec.input_attr.empty()) {
      out.push_back(SIZE_MAX);
      continue;
    }
    auto idx = schema.IndexOf(spec.input_attr);
    if (!idx.has_value()) {
      return Status::InvalidArgument(
          "aggregate input attribute not in schema: " + spec.input_attr);
    }
    out.push_back(*idx);
  }
  return out;
}

std::vector<gdm::Value> EvaluateAggregates(
    const std::vector<AggregateSpec>& specs, const std::vector<size_t>& inputs,
    const std::vector<gdm::GenomicRegion>& regions,
    const std::vector<size_t>& selected) {
  std::vector<AggAccumulator> accs;
  accs.reserve(specs.size());
  for (const auto& spec : specs) accs.emplace_back(spec.func);
  for (size_t ri : selected) {
    const auto& r = regions[ri];
    for (size_t a = 0; a < specs.size(); ++a) {
      if (inputs[a] == SIZE_MAX) {
        accs[a].AddRegion();
      } else {
        accs[a].Add(r.values[inputs[a]]);
      }
    }
  }
  std::vector<gdm::Value> out;
  out.reserve(specs.size());
  for (const auto& acc : accs) out.push_back(acc.Finish());
  return out;
}

}  // namespace gdms::core
