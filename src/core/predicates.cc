#include "core/predicates.h"

#include <cstdlib>

#include "common/string_util.h"

namespace gdms::core {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

bool ApplyCmp(int cmp, CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return cmp == 0;
    case CmpOp::kNe:
      return cmp != 0;
    case CmpOp::kLt:
      return cmp < 0;
    case CmpOp::kLe:
      return cmp <= 0;
    case CmpOp::kGt:
      return cmp > 0;
    case CmpOp::kGe:
      return cmp >= 0;
  }
  return false;
}

/// Numeric-if-possible string comparison used by metadata predicates.
int CompareMetaValues(const std::string& a, const std::string& b) {
  auto na = ParseDouble(a);
  auto nb = ParseDouble(b);
  if (na.ok() && nb.ok()) {
    double x = na.value();
    double y = nb.value();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

// ---- MetaPredicate implementations ----

class MetaTrue final : public MetaPredicate {
 public:
  bool Eval(const gdm::Metadata&) const override { return true; }
  std::string ToString() const override { return "true"; }
};

class MetaCompare final : public MetaPredicate {
 public:
  MetaCompare(std::string attr, CmpOp op, std::string value)
      : attr_(std::move(attr)), op_(op), value_(std::move(value)) {}

  bool Eval(const gdm::Metadata& meta) const override {
    for (const auto& v : meta.ValuesOf(attr_)) {
      if (ApplyCmp(CompareMetaValues(v, value_), op_)) return true;
    }
    return false;
  }

  std::string ToString() const override {
    return attr_ + " " + CmpOpName(op_) + " '" + value_ + "'";
  }

 private:
  std::string attr_;
  CmpOp op_;
  std::string value_;
};

class MetaExists final : public MetaPredicate {
 public:
  explicit MetaExists(std::string attr) : attr_(std::move(attr)) {}
  bool Eval(const gdm::Metadata& meta) const override {
    return meta.Has(attr_);
  }
  std::string ToString() const override { return "exists(" + attr_ + ")"; }

 private:
  std::string attr_;
};

class MetaBinary final : public MetaPredicate {
 public:
  MetaBinary(bool is_and, Ptr a, Ptr b)
      : is_and_(is_and), a_(std::move(a)), b_(std::move(b)) {}
  bool Eval(const gdm::Metadata& meta) const override {
    return is_and_ ? (a_->Eval(meta) && b_->Eval(meta))
                   : (a_->Eval(meta) || b_->Eval(meta));
  }
  std::string ToString() const override {
    return "(" + a_->ToString() + (is_and_ ? " AND " : " OR ") +
           b_->ToString() + ")";
  }

 private:
  bool is_and_;
  Ptr a_;
  Ptr b_;
};

class MetaNot final : public MetaPredicate {
 public:
  explicit MetaNot(Ptr a) : a_(std::move(a)) {}
  bool Eval(const gdm::Metadata& meta) const override {
    return !a_->Eval(meta);
  }
  std::string ToString() const override { return "NOT " + a_->ToString(); }

 private:
  Ptr a_;
};

}  // namespace

MetaPredicate::Ptr MetaPredicate::True() {
  return std::make_shared<MetaTrue>();
}
MetaPredicate::Ptr MetaPredicate::Compare(std::string attr, CmpOp op,
                                          std::string value) {
  return std::make_shared<MetaCompare>(std::move(attr), op, std::move(value));
}
MetaPredicate::Ptr MetaPredicate::Exists(std::string attr) {
  return std::make_shared<MetaExists>(std::move(attr));
}
MetaPredicate::Ptr MetaPredicate::And(Ptr a, Ptr b) {
  return std::make_shared<MetaBinary>(true, std::move(a), std::move(b));
}
MetaPredicate::Ptr MetaPredicate::Or(Ptr a, Ptr b) {
  return std::make_shared<MetaBinary>(false, std::move(a), std::move(b));
}
MetaPredicate::Ptr MetaPredicate::Not(Ptr a) {
  return std::make_shared<MetaNot>(std::move(a));
}

namespace {

// ---- RegionPredicate implementations ----

/// Which operand a comparison reads.
enum class RegionField { kChr, kLeft, kRight, kStrand, kVar };

class RegionTrue final : public RegionPredicate {
 public:
  Status Bind(const gdm::RegionSchema&) override { return Status::OK(); }
  bool Eval(const gdm::GenomicRegion&) const override { return true; }
  std::string ToString() const override { return "true"; }
  Ptr Clone() const override { return std::make_shared<RegionTrue>(); }
};

class RegionCompare final : public RegionPredicate {
 public:
  RegionCompare(std::string attr, CmpOp op, gdm::Value value)
      : attr_(std::move(attr)), op_(op), value_(std::move(value)) {}

  Status Bind(const gdm::RegionSchema& schema) override {
    if (attr_ == "chr" || attr_ == "chrom") {
      field_ = RegionField::kChr;
    } else if (attr_ == "left" || attr_ == "start") {
      field_ = RegionField::kLeft;
    } else if (attr_ == "right" || attr_ == "stop") {
      field_ = RegionField::kRight;
    } else if (attr_ == "strand") {
      field_ = RegionField::kStrand;
    } else {
      auto idx = schema.IndexOf(attr_);
      if (!idx.has_value()) {
        return Status::InvalidArgument(
            "region predicate references unknown attribute: " + attr_);
      }
      field_ = RegionField::kVar;
      index_ = *idx;
    }
    if (field_ == RegionField::kChr && value_.is_string()) {
      chrom_id_ = gdm::InternChrom(value_.AsString());
    }
    return Status::OK();
  }

  bool Eval(const gdm::GenomicRegion& r) const override {
    switch (field_) {
      case RegionField::kChr:
        return ApplyCmp(
            r.chrom == chrom_id_ ? 0 : (r.chrom < chrom_id_ ? -1 : 1), op_);
      case RegionField::kLeft:
        return ApplyCmp(gdm::Value(r.left).Compare(value_), op_);
      case RegionField::kRight:
        return ApplyCmp(gdm::Value(r.right).Compare(value_), op_);
      case RegionField::kStrand: {
        std::string s(1, gdm::StrandChar(r.strand));
        return ApplyCmp(gdm::Value(s).Compare(value_), op_);
      }
      case RegionField::kVar: {
        const gdm::Value& v = r.values[index_];
        if (v.is_null()) return false;  // SQL-style NULL semantics
        return ApplyCmp(v.Compare(value_), op_);
      }
    }
    return false;
  }

  std::string ToString() const override {
    return attr_ + " " + CmpOpName(op_) + " " + value_.ToString();
  }

  Ptr Clone() const override {
    return std::make_shared<RegionCompare>(attr_, op_, value_);
  }

 private:
  std::string attr_;
  CmpOp op_;
  gdm::Value value_;
  RegionField field_ = RegionField::kVar;
  size_t index_ = 0;
  int32_t chrom_id_ = -1;
};

class RegionBinary final : public RegionPredicate {
 public:
  RegionBinary(bool is_and, Ptr a, Ptr b)
      : is_and_(is_and), a_(std::move(a)), b_(std::move(b)) {}
  Status Bind(const gdm::RegionSchema& schema) override {
    GDMS_RETURN_NOT_OK(a_->Bind(schema));
    return b_->Bind(schema);
  }
  bool Eval(const gdm::GenomicRegion& r) const override {
    return is_and_ ? (a_->Eval(r) && b_->Eval(r))
                   : (a_->Eval(r) || b_->Eval(r));
  }
  std::string ToString() const override {
    return "(" + a_->ToString() + (is_and_ ? " AND " : " OR ") +
           b_->ToString() + ")";
  }
  Ptr Clone() const override {
    return std::make_shared<RegionBinary>(is_and_, a_->Clone(), b_->Clone());
  }

 private:
  bool is_and_;
  Ptr a_;
  Ptr b_;
};

class RegionNot final : public RegionPredicate {
 public:
  explicit RegionNot(Ptr a) : a_(std::move(a)) {}
  Status Bind(const gdm::RegionSchema& schema) override {
    return a_->Bind(schema);
  }
  bool Eval(const gdm::GenomicRegion& r) const override {
    return !a_->Eval(r);
  }
  std::string ToString() const override { return "NOT " + a_->ToString(); }
  Ptr Clone() const override {
    return std::make_shared<RegionNot>(a_->Clone());
  }

 private:
  Ptr a_;
};

}  // namespace

RegionPredicate::Ptr RegionPredicate::True() {
  return std::make_shared<RegionTrue>();
}
RegionPredicate::Ptr RegionPredicate::Compare(std::string attr, CmpOp op,
                                              gdm::Value value) {
  return std::make_shared<RegionCompare>(std::move(attr), op, std::move(value));
}
RegionPredicate::Ptr RegionPredicate::And(Ptr a, Ptr b) {
  return std::make_shared<RegionBinary>(true, std::move(a), std::move(b));
}
RegionPredicate::Ptr RegionPredicate::Or(Ptr a, Ptr b) {
  return std::make_shared<RegionBinary>(false, std::move(a), std::move(b));
}
RegionPredicate::Ptr RegionPredicate::Not(Ptr a) {
  return std::make_shared<RegionNot>(std::move(a));
}

namespace {

// ---- RegionExpr implementations ----

class ExprConstant final : public RegionExpr {
 public:
  explicit ExprConstant(gdm::Value v) : value_(std::move(v)) {}
  Status Bind(const gdm::RegionSchema&) override { return Status::OK(); }
  gdm::Value Eval(const gdm::GenomicRegion&) const override { return value_; }
  std::string ToString() const override { return value_.ToString(); }
  gdm::AttrType OutputType(const gdm::RegionSchema&) const override {
    return value_.type();
  }
  Ptr Clone() const override { return std::make_shared<ExprConstant>(value_); }

 private:
  gdm::Value value_;
};

class ExprAttr final : public RegionExpr {
 public:
  explicit ExprAttr(std::string name) : name_(std::move(name)) {}

  Status Bind(const gdm::RegionSchema& schema) override {
    if (name_ == "left" || name_ == "start") {
      kind_ = 1;
    } else if (name_ == "right" || name_ == "stop") {
      kind_ = 2;
    } else if (name_ == "len" || name_ == "length") {
      kind_ = 3;
    } else if (name_ == "strand") {
      kind_ = 4;
    } else if (name_ == "chr" || name_ == "chrom") {
      kind_ = 5;
    } else {
      auto idx = schema.IndexOf(name_);
      if (!idx.has_value()) {
        return Status::InvalidArgument(
            "expression references unknown attribute: " + name_);
      }
      kind_ = 0;
      index_ = *idx;
    }
    return Status::OK();
  }

  gdm::Value Eval(const gdm::GenomicRegion& r) const override {
    switch (kind_) {
      case 1:
        return gdm::Value(r.left);
      case 2:
        return gdm::Value(r.right);
      case 3:
        return gdm::Value(r.length());
      case 4:
        return gdm::Value(std::string(1, gdm::StrandChar(r.strand)));
      case 5:
        return gdm::Value(gdm::ChromName(r.chrom));
      default:
        return r.values[index_];
    }
  }

  std::string ToString() const override { return name_; }

  gdm::AttrType OutputType(const gdm::RegionSchema& schema) const override {
    if (name_ == "left" || name_ == "start" || name_ == "right" ||
        name_ == "stop" || name_ == "len" || name_ == "length") {
      return gdm::AttrType::kInt;
    }
    if (name_ == "strand" || name_ == "chr" || name_ == "chrom") {
      return gdm::AttrType::kString;
    }
    auto idx = schema.IndexOf(name_);
    return idx ? schema.attr(*idx).type : gdm::AttrType::kNull;
  }

  Ptr Clone() const override { return std::make_shared<ExprAttr>(name_); }

 private:
  std::string name_;
  int kind_ = 0;
  size_t index_ = 0;
};

class ExprBinary final : public RegionExpr {
 public:
  ExprBinary(char op, Ptr lhs, Ptr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Status Bind(const gdm::RegionSchema& schema) override {
    GDMS_RETURN_NOT_OK(lhs_->Bind(schema));
    return rhs_->Bind(schema);
  }

  gdm::Value Eval(const gdm::GenomicRegion& r) const override {
    gdm::Value a = lhs_->Eval(r);
    gdm::Value b = rhs_->Eval(r);
    auto na = a.ToNumeric();
    auto nb = b.ToNumeric();
    if (!na.ok() || !nb.ok()) return gdm::Value::Null();
    double x = na.value();
    double y = nb.value();
    switch (op_) {
      case '+':
        return gdm::Value(x + y);
      case '-':
        return gdm::Value(x - y);
      case '*':
        return gdm::Value(x * y);
      case '/':
        return y == 0 ? gdm::Value::Null() : gdm::Value(x / y);
    }
    return gdm::Value::Null();
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + std::string(1, op_) + " " +
           rhs_->ToString() + ")";
  }

  gdm::AttrType OutputType(const gdm::RegionSchema&) const override {
    return gdm::AttrType::kDouble;
  }

  Ptr Clone() const override {
    return std::make_shared<ExprBinary>(op_, lhs_->Clone(), rhs_->Clone());
  }

 private:
  char op_;
  Ptr lhs_;
  Ptr rhs_;
};

}  // namespace

RegionExpr::Ptr RegionExpr::Constant(gdm::Value v) {
  return std::make_shared<ExprConstant>(std::move(v));
}
RegionExpr::Ptr RegionExpr::Attr(std::string name) {
  return std::make_shared<ExprAttr>(std::move(name));
}
RegionExpr::Ptr RegionExpr::Binary(char op, Ptr lhs, Ptr rhs) {
  return std::make_shared<ExprBinary>(op, std::move(lhs), std::move(rhs));
}

}  // namespace gdms::core
