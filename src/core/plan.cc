#include "core/plan.h"

namespace gdms::core {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kSource:
      return "SOURCE";
    case OpKind::kSelect:
      return "SELECT";
    case OpKind::kProject:
      return "PROJECT";
    case OpKind::kExtend:
      return "EXTEND";
    case OpKind::kMerge:
      return "MERGE";
    case OpKind::kGroup:
      return "GROUP";
    case OpKind::kOrder:
      return "ORDER";
    case OpKind::kUnion:
      return "UNION";
    case OpKind::kDifference:
      return "DIFFERENCE";
    case OpKind::kSemijoin:
      return "SEMIJOIN";
    case OpKind::kJoin:
      return "JOIN";
    case OpKind::kMap:
      return "MAP";
    case OpKind::kCover:
      return "COVER";
    case OpKind::kFused:
      return "FUSED";
    case OpKind::kMaterialize:
      return "MATERIALIZE";
  }
  return "?";
}

const char* CoverVariantName(CoverVariant v) {
  switch (v) {
    case CoverVariant::kCover:
      return "COVER";
    case CoverVariant::kFlat:
      return "FLAT";
    case CoverVariant::kSummit:
      return "SUMMIT";
    case CoverVariant::kHistogram:
      return "HISTOGRAM";
  }
  return "?";
}

const char* JoinOutputName(JoinOutput o) {
  switch (o) {
    case JoinOutput::kLeft:
      return "LEFT";
    case JoinOutput::kRight:
      return "RIGHT";
    case JoinOutput::kIntersection:
      return "INT";
    case JoinOutput::kContig:
      return "CAT";
  }
  return "?";
}

std::string GenometricPredicate::ToString() const {
  std::string out;
  auto append = [&](const std::string& s) {
    if (!out.empty()) out += " AND ";
    out += s;
  };
  if (has_upper) append("DLE(" + std::to_string(max_dist) + ")");
  if (min_dist != INT64_MIN) append("DGE(" + std::to_string(min_dist) + ")");
  if (md_k > 0) append("MD(" + std::to_string(md_k) + ")");
  if (upstream) append("UP");
  if (downstream) append("DOWN");
  if (out.empty()) out = "true";
  return out;
}

namespace {

std::string JoinStrings(const std::vector<std::string>& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += v[i];
  }
  return out;
}

std::string AggsToString(const std::vector<AggregateSpec>& aggs) {
  std::string out;
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggs[i].ToString();
  }
  return out;
}

}  // namespace

std::string PlanNode::Signature() const {
  std::string out = OpKindName(kind);
  out += "(";
  switch (kind) {
    case OpKind::kSource:
      out += name;
      break;
    case OpKind::kSelect:
      out += select.meta->ToString();
      out += "; region: ";
      out += select.region->ToString();
      break;
    case OpKind::kProject: {
      out += project.keep_all ? "*" : JoinStrings(project.keep_attrs);
      for (const auto& na : project.new_attrs) {
        out += "; " + na.name + " AS " + na.expr->ToString();
      }
      if (!project.meta_all) {
        out += "; meta: " + JoinStrings(project.keep_meta);
      }
      break;
    }
    case OpKind::kExtend:
      out += AggsToString(extend.aggregates);
      break;
    case OpKind::kMerge:
      out += merge.groupby;
      break;
    case OpKind::kGroup:
      out += group.meta_attr + "; " + AggsToString(group.aggregates);
      break;
    case OpKind::kOrder:
      out += order.meta_attr;
      if (order.descending) out += " DESC";
      if (order.top > 0) out += "; TOP " + std::to_string(order.top);
      if (!order.region_attr.empty()) {
        out += "; region: " + order.region_attr;
        if (order.region_descending) out += " DESC";
        out += " TOP " + std::to_string(order.region_top);
      }
      break;
    case OpKind::kUnion:
      break;
    case OpKind::kDifference:
      out += "joinby: " + JoinStrings(difference.joinby);
      break;
    case OpKind::kSemijoin:
      out += JoinStrings(semijoin.attrs);
      if (semijoin.negated) out += "; NOT";
      break;
    case OpKind::kJoin:
      out += join.predicate.ToString();
      out += "; ";
      out += JoinOutputName(join.output);
      if (!join.joinby.empty()) out += "; joinby: " + JoinStrings(join.joinby);
      break;
    case OpKind::kMap:
      out += AggsToString(map.aggregates);
      if (!map.joinby.empty()) out += "; joinby: " + JoinStrings(map.joinby);
      break;
    case OpKind::kCover:
      out += CoverVariantName(cover.variant);
      out += " " + std::to_string(cover.min_acc) + "," +
             std::to_string(cover.max_acc);
      if (!cover.aggregates.empty()) {
        out += "; " + AggsToString(cover.aggregates);
      }
      if (!cover.groupby.empty()) out += "; groupby: " + cover.groupby;
      break;
    case OpKind::kFused:
      // Stage signatures carry the stage params; stage children (which point
      // at the pre-fusion chain) are excluded — this node's own `children`
      // rendering below covers the real inputs.
      for (size_t i = 0; i < fused_stages.size(); ++i) {
        if (i > 0) out += " | ";
        PlanNode stage_copy = *fused_stages[i];
        stage_copy.children.clear();
        out += stage_copy.Signature();
      }
      break;
    case OpKind::kMaterialize:
      out += name;
      break;
  }
  out += ")";
  if (!children.empty()) {
    out += "[";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) out += ", ";
      out += children[i]->Signature();
    }
    out += "]";
  }
  return out;
}

PlanNode::Ptr PlanNode::Source(std::string dataset_name) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kSource;
  n->name = std::move(dataset_name);
  return n;
}

PlanNode::Ptr PlanNode::Select(Ptr child, SelectParams params) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kSelect;
  n->children = {std::move(child)};
  n->select = std::move(params);
  return n;
}

PlanNode::Ptr PlanNode::Project(Ptr child, ProjectParams params) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kProject;
  n->children = {std::move(child)};
  n->project = std::move(params);
  return n;
}

PlanNode::Ptr PlanNode::Extend(Ptr child, ExtendParams params) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kExtend;
  n->children = {std::move(child)};
  n->extend = std::move(params);
  return n;
}

PlanNode::Ptr PlanNode::Merge(Ptr child, MergeParams params) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kMerge;
  n->children = {std::move(child)};
  n->merge = std::move(params);
  return n;
}

PlanNode::Ptr PlanNode::Group(Ptr child, GroupParams params) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kGroup;
  n->children = {std::move(child)};
  n->group = std::move(params);
  return n;
}

PlanNode::Ptr PlanNode::Order(Ptr child, OrderParams params) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kOrder;
  n->children = {std::move(child)};
  n->order = std::move(params);
  return n;
}

PlanNode::Ptr PlanNode::Union(Ptr left, Ptr right) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kUnion;
  n->children = {std::move(left), std::move(right)};
  return n;
}

PlanNode::Ptr PlanNode::Difference(Ptr left, Ptr right,
                                   DifferenceParams params) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kDifference;
  n->children = {std::move(left), std::move(right)};
  n->difference = std::move(params);
  return n;
}

PlanNode::Ptr PlanNode::Semijoin(Ptr left, Ptr right, SemijoinParams params) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kSemijoin;
  n->children = {std::move(left), std::move(right)};
  n->semijoin = std::move(params);
  return n;
}

PlanNode::Ptr PlanNode::Join(Ptr left, Ptr right, JoinParams params) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kJoin;
  n->children = {std::move(left), std::move(right)};
  n->join = std::move(params);
  return n;
}

PlanNode::Ptr PlanNode::Map(Ptr ref, Ptr exp, MapParams params) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kMap;
  n->children = {std::move(ref), std::move(exp)};
  n->map = std::move(params);
  return n;
}

PlanNode::Ptr PlanNode::Cover(Ptr child, CoverParams params) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kCover;
  n->children = {std::move(child)};
  n->cover = std::move(params);
  return n;
}

std::string PlanNode::FusedChainName() const {
  std::string out;
  for (size_t i = 0; i < fused_stages.size(); ++i) {
    if (i > 0) out += "+";
    out += OpKindName(fused_stages[i]->kind);
  }
  return out;
}

PlanNode::Ptr PlanNode::Fused(std::vector<Ptr> stages) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kFused;
  n->children = stages[0]->children;
  n->fused_stages = std::move(stages);
  return n;
}

PlanNode::Ptr PlanNode::Materialize(Ptr child, std::string output_name) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kMaterialize;
  n->children = {std::move(child)};
  n->name = std::move(output_name);
  return n;
}

}  // namespace gdms::core
