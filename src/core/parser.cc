#include "core/parser.h"

#include <cctype>
#include <vector>

#include "common/string_util.h"

namespace gdms::core {

namespace {

// ---------------------------------------------------------------- lexer ----

enum class TokKind {
  kIdent,
  kNumber,
  kString,   // quoted
  kSymbol,   // one of ( ) ; , = == != <= >= < > + - * / : .
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  size_t line = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#') {  // comment to end of line
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '.')) {
          ++pos_;
        }
        out.push_back(
            {TokKind::kIdent, text_.substr(start, pos_ - start), line_});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && pos_ + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) &&
           NumberContext(out))) {
        size_t start = pos_;
        if (c == '-') ++pos_;
        bool saw_dot = false;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                (!saw_dot && text_[pos_] == '.' && pos_ + 1 < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))))) {
          if (text_[pos_] == '.') saw_dot = true;
          ++pos_;
        }
        out.push_back(
            {TokKind::kNumber, text_.substr(start, pos_ - start), line_});
        continue;
      }
      if (c == '\'' || c == '"') {
        char quote = c;
        ++pos_;
        size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
        if (pos_ >= text_.size()) {
          return Status::ParseError("unterminated string at line " +
                                    std::to_string(line_));
        }
        out.push_back(
            {TokKind::kString, text_.substr(start, pos_ - start), line_});
        ++pos_;
        continue;
      }
      // Multi-char symbols first.
      static const char* kTwo[] = {"==", "!=", "<=", ">="};
      bool matched = false;
      for (const char* sym : kTwo) {
        if (text_.compare(pos_, 2, sym) == 0) {
          out.push_back({TokKind::kSymbol, sym, line_});
          pos_ += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      static const std::string kOne = "();,=<>+-*/:.";
      if (kOne.find(c) != std::string::npos) {
        out.push_back({TokKind::kSymbol, std::string(1, c), line_});
        ++pos_;
        continue;
      }
      return Status::ParseError("unexpected character '" + std::string(1, c) +
                                "' at line " + std::to_string(line_));
    }
    out.push_back({TokKind::kEnd, "", line_});
    return out;
  }

 private:
  /// A '-' starts a negative number only after a symbol that cannot end an
  /// expression (so "a - 5" lexes as binary minus but "DGE(-1)" as -1).
  static bool NumberContext(const std::vector<Token>& out) {
    if (out.empty()) return true;
    const Token& prev = out.back();
    if (prev.kind == TokKind::kSymbol &&
        (prev.text == "(" || prev.text == "," || prev.text == "==" ||
         prev.text == "!=" || prev.text == "<" || prev.text == "<=" ||
         prev.text == ">" || prev.text == ">=" || prev.text == ";" ||
         prev.text == ":")) {
      return true;
    }
    return false;
  }

  const std::string& text_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

// --------------------------------------------------------------- parser ----

bool EqualsIgnoreCase(const std::string& a, const char* b) {
  return ToLower(a) == ToLower(b);
}

class ParserImpl {
 public:
  explicit ParserImpl(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> Run() {
    Program program;
    std::string last_var;
    while (!AtEnd()) {
      const Token& t = Peek();
      if (t.kind == TokKind::kIdent &&
          EqualsIgnoreCase(t.text, "MATERIALIZE")) {
        Advance();
        GDMS_ASSIGN_OR_RETURN(std::string var, ExpectIdent("variable name"));
        std::string out_name = var;
        if (PeekIdent("INTO")) {
          Advance();
          GDMS_ASSIGN_OR_RETURN(out_name, ExpectIdent("output name"));
        }
        GDMS_RETURN_NOT_OK(ExpectSymbol(";"));
        auto it = vars_.find(var);
        if (it == vars_.end()) {
          return ErrorHere("MATERIALIZE of unknown variable " + var);
        }
        program.sinks.push_back(PlanNode::Materialize(it->second, out_name));
        continue;
      }
      // VAR = OP(...) operands ;
      GDMS_ASSIGN_OR_RETURN(std::string var, ExpectIdent("variable name"));
      GDMS_RETURN_NOT_OK(ExpectSymbol("="));
      GDMS_ASSIGN_OR_RETURN(PlanNode::Ptr node, ParseOperator());
      GDMS_RETURN_NOT_OK(ExpectSymbol(";"));
      vars_[var] = node;
      last_var = var;
    }
    if (program.sinks.empty() && !last_var.empty()) {
      program.sinks.push_back(PlanNode::Materialize(vars_[last_var], last_var));
    }
    return program;
  }

 private:
  // -- token helpers --

  bool AtEnd() const { return tokens_[index_].kind == TokKind::kEnd; }
  const Token& Peek(size_t ahead = 0) const {
    size_t i = index_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[index_++]; }

  bool PeekSymbol(const char* sym, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokKind::kSymbol && t.text == sym;
  }
  bool PeekIdent(const char* word, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokKind::kIdent && EqualsIgnoreCase(t.text, word);
  }
  bool ConsumeSymbol(const char* sym) {
    if (PeekSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeIdent(const char* word) {
    if (PeekIdent(word)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ErrorHere(const std::string& msg) const {
    return Status::ParseError(msg + " (line " + std::to_string(Peek().line) +
                              ", near '" + Peek().text + "')");
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != TokKind::kIdent) {
      return ErrorHere(std::string("expected ") + what);
    }
    return Advance().text;
  }

  Status ExpectSymbol(const char* sym) {
    if (!PeekSymbol(sym)) {
      return ErrorHere(std::string("expected '") + sym + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<int64_t> ExpectInteger(const char* what) {
    if (Peek().kind != TokKind::kNumber) {
      return ErrorHere(std::string("expected ") + what);
    }
    return ParseInt64(Advance().text);
  }

  // -- operand resolution --

  Result<PlanNode::Ptr> ResolveOperand() {
    GDMS_ASSIGN_OR_RETURN(std::string name, ExpectIdent("operand"));
    auto it = vars_.find(name);
    if (it != vars_.end()) return it->second;
    return PlanNode::Source(name);
  }

  // -- operator dispatch --

  Result<PlanNode::Ptr> ParseOperator() {
    GDMS_ASSIGN_OR_RETURN(std::string op, ExpectIdent("operator name"));
    std::string up = ToLower(op);
    GDMS_RETURN_NOT_OK(ExpectSymbol("("));
    if (up == "select") return ParseSelect();
    if (up == "project") return ParseProject();
    if (up == "extend") return ParseExtend();
    if (up == "merge") return ParseMerge();
    if (up == "group") return ParseGroup();
    if (up == "order") return ParseOrder();
    if (up == "union") return ParseUnion();
    if (up == "difference") return ParseDifference();
    if (up == "semijoin") return ParseSemijoin();
    if (up == "join") return ParseJoin();
    if (up == "map") return ParseMap();
    if (up == "cover") return ParseCover(CoverVariant::kCover);
    if (up == "flat") return ParseCover(CoverVariant::kFlat);
    if (up == "summit") return ParseCover(CoverVariant::kSummit);
    if (up == "histogram") return ParseCover(CoverVariant::kHistogram);
    return ErrorHere("unknown operator " + op);
  }

  // -- predicates --

  Result<CmpOp> ParseCmpOp() {
    const Token& t = Peek();
    if (t.kind != TokKind::kSymbol) return ErrorHere("expected comparison");
    CmpOp op;
    if (t.text == "==" || t.text == "=") {
      op = CmpOp::kEq;
    } else if (t.text == "!=") {
      op = CmpOp::kNe;
    } else if (t.text == "<") {
      op = CmpOp::kLt;
    } else if (t.text == "<=") {
      op = CmpOp::kLe;
    } else if (t.text == ">") {
      op = CmpOp::kGt;
    } else if (t.text == ">=") {
      op = CmpOp::kGe;
    } else {
      return ErrorHere("expected comparison operator");
    }
    Advance();
    return op;
  }

  Result<MetaPredicate::Ptr> ParseMetaOr() {
    GDMS_ASSIGN_OR_RETURN(MetaPredicate::Ptr lhs, ParseMetaAnd());
    while (ConsumeIdent("OR")) {
      GDMS_ASSIGN_OR_RETURN(MetaPredicate::Ptr rhs, ParseMetaAnd());
      lhs = MetaPredicate::Or(lhs, rhs);
    }
    return lhs;
  }

  Result<MetaPredicate::Ptr> ParseMetaAnd() {
    GDMS_ASSIGN_OR_RETURN(MetaPredicate::Ptr lhs, ParseMetaUnary());
    while (ConsumeIdent("AND")) {
      GDMS_ASSIGN_OR_RETURN(MetaPredicate::Ptr rhs, ParseMetaUnary());
      lhs = MetaPredicate::And(lhs, rhs);
    }
    return lhs;
  }

  Result<MetaPredicate::Ptr> ParseMetaUnary() {
    if (ConsumeIdent("NOT")) {
      GDMS_ASSIGN_OR_RETURN(MetaPredicate::Ptr inner, ParseMetaUnary());
      return MetaPredicate::Not(inner);
    }
    if (ConsumeSymbol("(")) {
      GDMS_ASSIGN_OR_RETURN(MetaPredicate::Ptr inner, ParseMetaOr());
      GDMS_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    if (PeekIdent("exists") && PeekSymbol("(", 1)) {
      Advance();
      Advance();
      GDMS_ASSIGN_OR_RETURN(std::string attr, ExpectIdent("attribute"));
      GDMS_RETURN_NOT_OK(ExpectSymbol(")"));
      return MetaPredicate::Exists(attr);
    }
    GDMS_ASSIGN_OR_RETURN(std::string attr, ExpectIdent("metadata attribute"));
    GDMS_ASSIGN_OR_RETURN(CmpOp op, ParseCmpOp());
    const Token& v = Peek();
    if (v.kind != TokKind::kString && v.kind != TokKind::kNumber &&
        v.kind != TokKind::kIdent) {
      return ErrorHere("expected comparison value");
    }
    Advance();
    return MetaPredicate::Compare(attr, op, v.text);
  }

  Result<RegionPredicate::Ptr> ParseRegionOr() {
    GDMS_ASSIGN_OR_RETURN(RegionPredicate::Ptr lhs, ParseRegionAnd());
    while (ConsumeIdent("OR")) {
      GDMS_ASSIGN_OR_RETURN(RegionPredicate::Ptr rhs, ParseRegionAnd());
      lhs = RegionPredicate::Or(lhs, rhs);
    }
    return lhs;
  }

  Result<RegionPredicate::Ptr> ParseRegionAnd() {
    GDMS_ASSIGN_OR_RETURN(RegionPredicate::Ptr lhs, ParseRegionUnary());
    while (ConsumeIdent("AND")) {
      GDMS_ASSIGN_OR_RETURN(RegionPredicate::Ptr rhs, ParseRegionUnary());
      lhs = RegionPredicate::And(lhs, rhs);
    }
    return lhs;
  }

  Result<RegionPredicate::Ptr> ParseRegionUnary() {
    if (ConsumeIdent("NOT")) {
      GDMS_ASSIGN_OR_RETURN(RegionPredicate::Ptr inner, ParseRegionUnary());
      return RegionPredicate::Not(inner);
    }
    if (ConsumeSymbol("(")) {
      GDMS_ASSIGN_OR_RETURN(RegionPredicate::Ptr inner, ParseRegionOr());
      GDMS_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    GDMS_ASSIGN_OR_RETURN(std::string attr, ExpectIdent("region attribute"));
    GDMS_ASSIGN_OR_RETURN(CmpOp op, ParseCmpOp());
    const Token& v = Peek();
    gdm::Value value;
    if (v.kind == TokKind::kString || v.kind == TokKind::kIdent) {
      value = gdm::Value(v.text);
    } else if (v.kind == TokKind::kNumber) {
      if (v.text.find('.') != std::string::npos) {
        GDMS_ASSIGN_OR_RETURN(double d, ParseDouble(v.text));
        value = gdm::Value(d);
      } else {
        GDMS_ASSIGN_OR_RETURN(int64_t i, ParseInt64(v.text));
        value = gdm::Value(i);
      }
    } else {
      return ErrorHere("expected comparison value");
    }
    Advance();
    return RegionPredicate::Compare(attr, op, value);
  }

  // -- aggregate lists: name AS FUNC[(attr)] --

  Result<std::vector<AggregateSpec>> ParseAggList() {
    std::vector<AggregateSpec> out;
    while (true) {
      GDMS_ASSIGN_OR_RETURN(std::string name, ExpectIdent("aggregate name"));
      if (!ConsumeIdent("AS")) return ErrorHere("expected AS");
      GDMS_ASSIGN_OR_RETURN(std::string func_name,
                            ExpectIdent("aggregate function"));
      GDMS_ASSIGN_OR_RETURN(AggFunc func, ParseAggFunc(func_name));
      AggregateSpec spec;
      spec.output_name = name;
      spec.func = func;
      if (ConsumeSymbol("(")) {
        if (!PeekSymbol(")")) {
          GDMS_ASSIGN_OR_RETURN(spec.input_attr, ExpectIdent("attribute"));
        }
        GDMS_RETURN_NOT_OK(ExpectSymbol(")"));
      }
      if (spec.func != AggFunc::kCount && spec.input_attr.empty()) {
        return ErrorHere(func_name + " requires an input attribute");
      }
      out.push_back(std::move(spec));
      if (!ConsumeSymbol(",")) break;
    }
    return out;
  }

  /// Parses "joinby: a, b" after its keyword was consumed.
  Result<std::vector<std::string>> ParseAttrList() {
    std::vector<std::string> out;
    while (true) {
      GDMS_ASSIGN_OR_RETURN(std::string attr, ExpectIdent("attribute"));
      out.push_back(std::move(attr));
      if (!ConsumeSymbol(",")) break;
    }
    return out;
  }

  // -- projection expressions --

  Result<RegionExpr::Ptr> ParseExpr() { return ParseExprAdd(); }

  Result<RegionExpr::Ptr> ParseExprAdd() {
    GDMS_ASSIGN_OR_RETURN(RegionExpr::Ptr lhs, ParseExprMul());
    while (PeekSymbol("+") || PeekSymbol("-")) {
      char op = Advance().text[0];
      GDMS_ASSIGN_OR_RETURN(RegionExpr::Ptr rhs, ParseExprMul());
      lhs = RegionExpr::Binary(op, lhs, rhs);
    }
    return lhs;
  }

  Result<RegionExpr::Ptr> ParseExprMul() {
    GDMS_ASSIGN_OR_RETURN(RegionExpr::Ptr lhs, ParseExprAtom());
    while (PeekSymbol("*") || PeekSymbol("/")) {
      char op = Advance().text[0];
      GDMS_ASSIGN_OR_RETURN(RegionExpr::Ptr rhs, ParseExprAtom());
      lhs = RegionExpr::Binary(op, lhs, rhs);
    }
    return lhs;
  }

  Result<RegionExpr::Ptr> ParseExprAtom() {
    if (ConsumeSymbol("(")) {
      GDMS_ASSIGN_OR_RETURN(RegionExpr::Ptr inner, ParseExpr());
      GDMS_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    const Token& t = Peek();
    if (t.kind == TokKind::kNumber) {
      Advance();
      if (t.text.find('.') != std::string::npos) {
        GDMS_ASSIGN_OR_RETURN(double d, ParseDouble(t.text));
        return RegionExpr::Constant(gdm::Value(d));
      }
      GDMS_ASSIGN_OR_RETURN(int64_t i, ParseInt64(t.text));
      return RegionExpr::Constant(gdm::Value(i));
    }
    if (t.kind == TokKind::kString) {
      Advance();
      return RegionExpr::Constant(gdm::Value(t.text));
    }
    GDMS_ASSIGN_OR_RETURN(std::string name, ExpectIdent("attribute"));
    return RegionExpr::Attr(name);
  }

  // -- per-operator parsers (opening '(' already consumed) --

  Result<PlanNode::Ptr> ParseSelect() {
    SelectParams params;
    if (!PeekSymbol(")")) {
      if (PeekIdent("region") && PeekSymbol(":", 1)) {
        Advance();
        Advance();
        GDMS_ASSIGN_OR_RETURN(params.region, ParseRegionOr());
      } else {
        GDMS_ASSIGN_OR_RETURN(params.meta, ParseMetaOr());
        if (ConsumeSymbol(";")) {
          if (!ConsumeIdent("region")) return ErrorHere("expected 'region:'");
          GDMS_RETURN_NOT_OK(ExpectSymbol(":"));
          GDMS_ASSIGN_OR_RETURN(params.region, ParseRegionOr());
        }
      }
    }
    GDMS_RETURN_NOT_OK(ExpectSymbol(")"));
    GDMS_ASSIGN_OR_RETURN(PlanNode::Ptr child, ResolveOperand());
    return PlanNode::Select(child, std::move(params));
  }

  Result<PlanNode::Ptr> ParseProject() {
    ProjectParams params;
    if (ConsumeSymbol("*")) {
      params.keep_all = true;
    } else if (!PeekSymbol(";") && !PeekSymbol(")")) {
      GDMS_ASSIGN_OR_RETURN(params.keep_attrs, ParseAttrList());
    }
    while (ConsumeSymbol(";")) {
      if (ConsumeIdent("meta")) {
        GDMS_RETURN_NOT_OK(ExpectSymbol(":"));
        params.meta_all = false;
        if (!PeekSymbol(")")) {
          GDMS_ASSIGN_OR_RETURN(params.keep_meta, ParseAttrList());
        }
        continue;
      }
      while (true) {
        GDMS_ASSIGN_OR_RETURN(std::string name, ExpectIdent("new attribute"));
        if (!ConsumeIdent("AS")) return ErrorHere("expected AS");
        ProjectParams::NewAttr na;
        na.name = std::move(name);
        GDMS_ASSIGN_OR_RETURN(na.expr, ParseExpr());
        params.new_attrs.push_back(std::move(na));
        if (!ConsumeSymbol(",")) break;
      }
    }
    GDMS_RETURN_NOT_OK(ExpectSymbol(")"));
    GDMS_ASSIGN_OR_RETURN(PlanNode::Ptr child, ResolveOperand());
    return PlanNode::Project(child, std::move(params));
  }

  Result<PlanNode::Ptr> ParseExtend() {
    ExtendParams params;
    GDMS_ASSIGN_OR_RETURN(params.aggregates, ParseAggList());
    GDMS_RETURN_NOT_OK(ExpectSymbol(")"));
    GDMS_ASSIGN_OR_RETURN(PlanNode::Ptr child, ResolveOperand());
    return PlanNode::Extend(child, std::move(params));
  }

  Result<PlanNode::Ptr> ParseMerge() {
    MergeParams params;
    if (ConsumeIdent("groupby")) {
      GDMS_RETURN_NOT_OK(ExpectSymbol(":"));
      GDMS_ASSIGN_OR_RETURN(params.groupby, ExpectIdent("attribute"));
    }
    GDMS_RETURN_NOT_OK(ExpectSymbol(")"));
    GDMS_ASSIGN_OR_RETURN(PlanNode::Ptr child, ResolveOperand());
    return PlanNode::Merge(child, std::move(params));
  }

  Result<PlanNode::Ptr> ParseGroup() {
    GroupParams params;
    GDMS_ASSIGN_OR_RETURN(params.meta_attr, ExpectIdent("grouping attribute"));
    if (ConsumeSymbol(";")) {
      GDMS_ASSIGN_OR_RETURN(params.aggregates, ParseAggList());
    }
    GDMS_RETURN_NOT_OK(ExpectSymbol(")"));
    GDMS_ASSIGN_OR_RETURN(PlanNode::Ptr child, ResolveOperand());
    return PlanNode::Group(child, std::move(params));
  }

  Result<PlanNode::Ptr> ParseOrder() {
    OrderParams params;
    GDMS_ASSIGN_OR_RETURN(params.meta_attr, ExpectIdent("ordering attribute"));
    if (ConsumeIdent("DESC")) params.descending = true;
    while (ConsumeSymbol(";")) {
      if (ConsumeIdent("TOP")) {
        GDMS_ASSIGN_OR_RETURN(int64_t n, ExpectInteger("TOP count"));
        if (n < 0) return ErrorHere("TOP count must be >= 0");
        params.top = static_cast<size_t>(n);
      } else if (ConsumeIdent("region")) {
        GDMS_RETURN_NOT_OK(ExpectSymbol(":"));
        GDMS_ASSIGN_OR_RETURN(params.region_attr,
                              ExpectIdent("region ordering attribute"));
        if (ConsumeIdent("DESC")) params.region_descending = true;
        if (!ConsumeIdent("TOP")) return ErrorHere("expected TOP");
        GDMS_ASSIGN_OR_RETURN(int64_t m, ExpectInteger("region TOP count"));
        if (m <= 0) return ErrorHere("region TOP count must be > 0");
        params.region_top = static_cast<size_t>(m);
      } else {
        return ErrorHere("expected TOP or region:");
      }
    }
    GDMS_RETURN_NOT_OK(ExpectSymbol(")"));
    GDMS_ASSIGN_OR_RETURN(PlanNode::Ptr child, ResolveOperand());
    return PlanNode::Order(child, std::move(params));
  }

  Result<PlanNode::Ptr> ParseUnion() {
    GDMS_RETURN_NOT_OK(ExpectSymbol(")"));
    GDMS_ASSIGN_OR_RETURN(PlanNode::Ptr left, ResolveOperand());
    GDMS_ASSIGN_OR_RETURN(PlanNode::Ptr right, ResolveOperand());
    return PlanNode::Union(left, right);
  }

  Result<PlanNode::Ptr> ParseDifference() {
    DifferenceParams params;
    if (ConsumeIdent("joinby")) {
      GDMS_RETURN_NOT_OK(ExpectSymbol(":"));
      GDMS_ASSIGN_OR_RETURN(params.joinby, ParseAttrList());
    }
    GDMS_RETURN_NOT_OK(ExpectSymbol(")"));
    GDMS_ASSIGN_OR_RETURN(PlanNode::Ptr left, ResolveOperand());
    GDMS_ASSIGN_OR_RETURN(PlanNode::Ptr right, ResolveOperand());
    return PlanNode::Difference(left, right, std::move(params));
  }

  Result<PlanNode::Ptr> ParseSemijoin() {
    SemijoinParams params;
    GDMS_ASSIGN_OR_RETURN(params.attrs, ParseAttrList());
    if (ConsumeSymbol(";")) {
      if (!ConsumeIdent("NOT")) return ErrorHere("expected NOT");
      params.negated = true;
    }
    GDMS_RETURN_NOT_OK(ExpectSymbol(")"));
    GDMS_ASSIGN_OR_RETURN(PlanNode::Ptr left, ResolveOperand());
    GDMS_ASSIGN_OR_RETURN(PlanNode::Ptr right, ResolveOperand());
    return PlanNode::Semijoin(left, right, std::move(params));
  }

  Result<PlanNode::Ptr> ParseJoin() {
    JoinParams params;
    // Distance atoms.
    while (true) {
      if (ConsumeIdent("UP")) {
        params.predicate.upstream = true;
      } else if (ConsumeIdent("DOWN")) {
        params.predicate.downstream = true;
      } else if (PeekIdent("DLE") || PeekIdent("DLT") || PeekIdent("DGE") ||
                 PeekIdent("DGT") || PeekIdent("MD")) {
        std::string atom = ToLower(Advance().text);
        GDMS_RETURN_NOT_OK(ExpectSymbol("("));
        GDMS_ASSIGN_OR_RETURN(int64_t n, ExpectInteger("distance"));
        GDMS_RETURN_NOT_OK(ExpectSymbol(")"));
        if (atom == "dle") {
          params.predicate.max_dist = n;
          params.predicate.has_upper = true;
        } else if (atom == "dlt") {
          params.predicate.max_dist = n - 1;
          params.predicate.has_upper = true;
        } else if (atom == "dge") {
          params.predicate.min_dist = n;
        } else if (atom == "dgt") {
          params.predicate.min_dist = n + 1;
        } else {  // md
          if (n <= 0) return ErrorHere("MD(k) requires k > 0");
          params.predicate.md_k = n;
        }
      } else {
        return ErrorHere(
            "expected genometric atom (DLE/DLT/DGE/DGT/MD/UP/DOWN)");
      }
      if (!ConsumeIdent("AND")) break;
    }
    GDMS_RETURN_NOT_OK(ExpectSymbol(";"));
    GDMS_ASSIGN_OR_RETURN(std::string output, ExpectIdent("output option"));
    std::string low = ToLower(output);
    if (low == "left") {
      params.output = JoinOutput::kLeft;
    } else if (low == "right") {
      params.output = JoinOutput::kRight;
    } else if (low == "int") {
      params.output = JoinOutput::kIntersection;
    } else if (low == "cat" || low == "contig") {
      params.output = JoinOutput::kContig;
    } else {
      return ErrorHere("unknown join output option " + output);
    }
    if (ConsumeSymbol(";")) {
      if (!ConsumeIdent("joinby")) return ErrorHere("expected joinby");
      GDMS_RETURN_NOT_OK(ExpectSymbol(":"));
      GDMS_ASSIGN_OR_RETURN(params.joinby, ParseAttrList());
    }
    GDMS_RETURN_NOT_OK(ExpectSymbol(")"));
    GDMS_ASSIGN_OR_RETURN(PlanNode::Ptr left, ResolveOperand());
    GDMS_ASSIGN_OR_RETURN(PlanNode::Ptr right, ResolveOperand());
    return PlanNode::Join(left, right, std::move(params));
  }

  Result<PlanNode::Ptr> ParseMap() {
    MapParams params;
    if (!PeekSymbol(")") && !PeekIdent("joinby")) {
      GDMS_ASSIGN_OR_RETURN(params.aggregates, ParseAggList());
    }
    if (ConsumeSymbol(";") || PeekIdent("joinby")) {
      if (!ConsumeIdent("joinby")) return ErrorHere("expected joinby");
      GDMS_RETURN_NOT_OK(ExpectSymbol(":"));
      GDMS_ASSIGN_OR_RETURN(params.joinby, ParseAttrList());
    }
    GDMS_RETURN_NOT_OK(ExpectSymbol(")"));
    GDMS_ASSIGN_OR_RETURN(PlanNode::Ptr ref, ResolveOperand());
    GDMS_ASSIGN_OR_RETURN(PlanNode::Ptr exp, ResolveOperand());
    return PlanNode::Map(ref, exp, std::move(params));
  }

  Result<PlanNode::Ptr> ParseCover(CoverVariant variant) {
    CoverParams params;
    params.variant = variant;
    GDMS_ASSIGN_OR_RETURN(params.min_acc, ParseAccBound());
    GDMS_RETURN_NOT_OK(ExpectSymbol(","));
    GDMS_ASSIGN_OR_RETURN(params.max_acc, ParseAccBound());
    if (ConsumeSymbol(";")) {
      if (ConsumeIdent("groupby")) {
        GDMS_RETURN_NOT_OK(ExpectSymbol(":"));
        GDMS_ASSIGN_OR_RETURN(params.groupby, ExpectIdent("attribute"));
      } else {
        GDMS_ASSIGN_OR_RETURN(params.aggregates, ParseAggList());
        if (ConsumeSymbol(";")) {
          if (!ConsumeIdent("groupby")) return ErrorHere("expected groupby");
          GDMS_RETURN_NOT_OK(ExpectSymbol(":"));
          GDMS_ASSIGN_OR_RETURN(params.groupby, ExpectIdent("attribute"));
        }
      }
    }
    GDMS_RETURN_NOT_OK(ExpectSymbol(")"));
    GDMS_ASSIGN_OR_RETURN(PlanNode::Ptr child, ResolveOperand());
    return PlanNode::Cover(child, std::move(params));
  }

  Result<int64_t> ParseAccBound() {
    if (ConsumeIdent("ANY")) return int64_t{-1};
    if (ConsumeIdent("ALL")) return int64_t{-2};
    return ExpectInteger("accumulation bound");
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
  std::map<std::string, PlanNode::Ptr> vars_;
};

}  // namespace

Result<Program> Parser::Parse(const std::string& text) {
  Lexer lexer(text);
  GDMS_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  ParserImpl impl(std::move(tokens));
  return impl.Run();
}

}  // namespace gdms::core
