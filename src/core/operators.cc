#include "core/operators.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/string_util.h"
#include "interval/accumulation.h"
#include "interval/sweep.h"

namespace gdms::core {

namespace {

using gdm::AttrType;
using gdm::Dataset;
using gdm::GenomicRegion;
using gdm::Metadata;
using gdm::RegionSchema;
using gdm::Sample;
using gdm::SampleId;
using gdm::Value;

void AddProvenance(Sample* sample, const std::string& op,
                   const std::vector<SampleId>& parents) {
  std::string entry = op + "[";
  for (size_t i = 0; i < parents.size(); ++i) {
    if (i > 0) entry += ",";
    entry += std::to_string(parents[i]);
  }
  entry += "]";
  sample->metadata.Add("_provenance", entry);
}

/// Numeric-aware comparison for metadata values (ORDER, GROUP keys).
int CompareMetaValues(const std::string& a, const std::string& b) {
  auto na = ParseDouble(a);
  auto nb = ParseDouble(b);
  if (na.ok() && nb.ok()) {
    double x = na.value();
    double y = nb.value();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

/// Replays RegionSchema::Merge and records, for each right attribute, its
/// index in the merged schema. Needed by UNION to remap right-side values.
RegionSchema MergeWithMapping(const RegionSchema& left,
                              const RegionSchema& right,
                              std::vector<size_t>* right_mapping) {
  RegionSchema out = left;
  right_mapping->clear();
  right_mapping->reserve(right.size());
  for (const auto& attr : right.attrs()) {
    auto idx = out.IndexOf(attr.name);
    if (idx.has_value() && out.attr(*idx).type == attr.type) {
      right_mapping->push_back(*idx);
      continue;
    }
    std::string name = attr.name;
    if (idx.has_value()) name = "right_" + name;
    while (out.Contains(name)) name = "right_" + name;
    right_mapping->push_back(out.size());
    (void)out.AddAttr(name, attr.type);
  }
  return out;
}

/// Appends aggregate output attributes to a schema, renaming collisions
/// with a numeric suffix. Returns the final names.
std::vector<std::string> AppendAggAttrs(
    const std::vector<AggregateSpec>& specs, RegionSchema* schema) {
  std::vector<std::string> names;
  for (const auto& spec : specs) {
    std::string name = spec.output_name;
    int suffix = 1;
    while (schema->Contains(name)) {
      name = spec.output_name + "_" + std::to_string(suffix++);
    }
    (void)schema->AddAttr(name, AggOutputType(spec.func));
    names.push_back(name);
  }
  return names;
}

/// Concatenated, sorted regions of several samples.
std::vector<GenomicRegion> ConcatRegions(
    const std::vector<const Sample*>& samples) {
  std::vector<GenomicRegion> out;
  size_t total = 0;
  for (const auto* s : samples) total += s->regions.size();
  out.reserve(total);
  for (const auto* s : samples) {
    out.insert(out.end(), s->regions.begin(), s->regions.end());
  }
  gdm::SortRegions(&out);
  return out;
}

}  // namespace

Result<gdm::Dataset> Operators::Select(const SelectParams& params,
                                       const Dataset& in) {
  Dataset out("SELECT", in.schema());
  RegionPredicate::Ptr region_pred = params.region->Clone();
  GDMS_RETURN_NOT_OK(region_pred->Bind(in.schema()));
  for (const auto& s : in.samples()) {
    if (!params.meta->Eval(s.metadata)) continue;
    Sample kept(s.id);
    kept.metadata = s.metadata;
    kept.regions.reserve(s.regions.size());
    for (const auto& r : s.regions) {
      if (region_pred->Eval(r)) kept.regions.push_back(r);
    }
    out.AddSample(std::move(kept));
  }
  return out;
}

Result<gdm::Dataset> Operators::Project(const ProjectParams& params,
                                        const Dataset& in) {
  // Output schema: kept attributes then new attributes.
  RegionSchema schema;
  std::vector<size_t> keep_indexes;
  if (params.keep_all) {
    schema = in.schema();
    for (size_t i = 0; i < in.schema().size(); ++i) keep_indexes.push_back(i);
  } else {
    for (const auto& name : params.keep_attrs) {
      auto idx = in.schema().IndexOf(name);
      if (!idx.has_value()) {
        return Status::InvalidArgument("PROJECT keeps unknown attribute: " +
                                       name);
      }
      keep_indexes.push_back(*idx);
      GDMS_RETURN_NOT_OK(schema.AddAttr(name, in.schema().attr(*idx).type));
    }
  }
  std::vector<RegionExpr::Ptr> exprs;
  for (const auto& na : params.new_attrs) {
    RegionExpr::Ptr expr = na.expr->Clone();
    GDMS_RETURN_NOT_OK(expr->Bind(in.schema()));
    GDMS_RETURN_NOT_OK(schema.AddAttr(na.name, expr->OutputType(in.schema())));
    exprs.push_back(std::move(expr));
  }

  Dataset out("PROJECT", schema);
  for (const auto& s : in.samples()) {
    Sample ns(s.id);
    if (params.meta_all) {
      ns.metadata = s.metadata;
    } else {
      for (const auto& attr : params.keep_meta) {
        for (const auto& value : s.metadata.ValuesOf(attr)) {
          ns.metadata.Add(attr, value);
        }
      }
    }
    ns.regions.reserve(s.regions.size());
    for (const auto& r : s.regions) {
      GenomicRegion nr(r.chrom, r.left, r.right, r.strand);
      nr.values.reserve(schema.size());
      for (size_t ki : keep_indexes) nr.values.push_back(r.values[ki]);
      for (const auto& expr : exprs) nr.values.push_back(expr->Eval(r));
      ns.regions.push_back(std::move(nr));
    }
    out.AddSample(std::move(ns));
  }
  return out;
}

Result<gdm::Dataset> Operators::Extend(const ExtendParams& params,
                                       const Dataset& in) {
  GDMS_ASSIGN_OR_RETURN(std::vector<size_t> inputs,
                        ResolveAggInputs(params.aggregates, in.schema()));
  Dataset out("EXTEND", in.schema());
  for (const auto& s : in.samples()) {
    Sample ns = s;
    std::vector<size_t> all(s.regions.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    auto values = EvaluateAggregates(params.aggregates, inputs, s.regions, all);
    for (size_t a = 0; a < params.aggregates.size(); ++a) {
      ns.metadata.Add(params.aggregates[a].output_name, values[a].ToString());
    }
    out.AddSample(std::move(ns));
  }
  return out;
}

Result<gdm::Dataset> Operators::Merge(const MergeParams& params,
                                      const Dataset& in) {
  Dataset out("MERGE", in.schema());
  // Group samples by the groupby value ("" = single group).
  std::map<std::string, std::vector<const Sample*>> groups;
  for (const auto& s : in.samples()) {
    std::string key =
        params.groupby.empty() ? "" : s.metadata.FirstValue(params.groupby);
    groups[key].push_back(&s);
  }
  for (const auto& [key, members] : groups) {
    std::vector<SampleId> parents;
    Metadata meta;
    for (const auto* m : members) {
      parents.push_back(m->id);
      meta = Metadata::Union(meta, m->metadata);
    }
    Sample ns(gdm::DeriveSampleId("MERGE", parents));
    ns.metadata = std::move(meta);
    ns.regions = ConcatRegions(members);
    AddProvenance(&ns, "MERGE", parents);
    if (!params.groupby.empty()) ns.metadata.Add(params.groupby, key);
    out.AddSample(std::move(ns));
  }
  return out;
}

Result<gdm::Dataset> Operators::Group(const GroupParams& params,
                                      const Dataset& in) {
  if (params.meta_attr.empty()) {
    return Status::InvalidArgument("GROUP requires a metadata attribute");
  }
  GDMS_ASSIGN_OR_RETURN(std::vector<size_t> inputs,
                        ResolveAggInputs(params.aggregates, in.schema()));
  Dataset out("GROUP", in.schema());
  std::map<std::string, std::vector<const Sample*>> groups;
  for (const auto& s : in.samples()) {
    groups[s.metadata.FirstValue(params.meta_attr)].push_back(&s);
  }
  for (const auto& [key, members] : groups) {
    std::vector<SampleId> parents;
    Metadata meta;
    for (const auto* m : members) {
      parents.push_back(m->id);
      meta = Metadata::Union(meta, m->metadata);
    }
    Sample ns(gdm::DeriveSampleId("GROUP", parents));
    ns.metadata = std::move(meta);
    ns.regions = ConcatRegions(members);
    // GROUP eliminates duplicate regions (same coordinates and values).
    ns.regions.erase(
        std::unique(ns.regions.begin(), ns.regions.end(),
                    [](const GenomicRegion& a, const GenomicRegion& b) {
                      return a.chrom == b.chrom && a.left == b.left &&
                             a.right == b.right && a.strand == b.strand &&
                             a.values == b.values;
                    }),
        ns.regions.end());
    std::vector<size_t> all(ns.regions.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    auto values =
        EvaluateAggregates(params.aggregates, inputs, ns.regions, all);
    for (size_t a = 0; a < params.aggregates.size(); ++a) {
      ns.metadata.Add(params.aggregates[a].output_name, values[a].ToString());
    }
    AddProvenance(&ns, "GROUP", parents);
    out.AddSample(std::move(ns));
  }
  return out;
}

Result<gdm::Dataset> Operators::Order(const OrderParams& params,
                                      const Dataset& in) {
  if (params.meta_attr.empty()) {
    return Status::InvalidArgument("ORDER requires a metadata attribute");
  }
  Dataset out("ORDER", in.schema());
  std::vector<const Sample*> ordered;
  ordered.reserve(in.num_samples());
  for (const auto& s : in.samples()) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](const Sample* a, const Sample* b) {
                     std::string va = a->metadata.FirstValue(params.meta_attr);
                     std::string vb = b->metadata.FirstValue(params.meta_attr);
                     // Missing values sort last regardless of direction.
                     bool ma = !a->metadata.Has(params.meta_attr);
                     bool mb = !b->metadata.Has(params.meta_attr);
                     if (ma != mb) return mb;
                     int cmp = CompareMetaValues(va, vb);
                     return params.descending ? cmp > 0 : cmp < 0;
                   });
  // Optional region clause: keep only the best region_top regions per
  // sample by the given attribute; output regions stay coordinate-sorted.
  std::optional<size_t> region_attr_index;
  if (!params.region_attr.empty()) {
    region_attr_index = in.schema().IndexOf(params.region_attr);
    if (!region_attr_index.has_value()) {
      return Status::InvalidArgument(
          "ORDER region clause references unknown attribute: " +
          params.region_attr);
    }
    if (params.region_top == 0) {
      return Status::InvalidArgument("ORDER region clause requires TOP > 0");
    }
  }

  size_t limit = params.top == 0 ? ordered.size()
                                 : std::min(params.top, ordered.size());
  for (size_t i = 0; i < limit; ++i) {
    Sample ns = *ordered[i];
    ns.metadata.RemoveAttr("_rank");
    ns.metadata.Add("_rank", std::to_string(i + 1));
    if (region_attr_index.has_value() &&
        ns.regions.size() > params.region_top) {
      size_t attr = *region_attr_index;
      std::stable_sort(ns.regions.begin(), ns.regions.end(),
                       [&](const GenomicRegion& a, const GenomicRegion& b) {
                         // NULLs sort last regardless of direction.
                         bool na = a.values[attr].is_null();
                         bool nb = b.values[attr].is_null();
                         if (na != nb) return nb;
                         int cmp = a.values[attr].Compare(b.values[attr]);
                         return params.region_descending ? cmp > 0 : cmp < 0;
                       });
      ns.regions.resize(params.region_top);
      ns.SortNow();
    }
    out.AddSample(std::move(ns));
  }
  return out;
}

Result<gdm::Dataset> Operators::Union(const Dataset& left,
                                      const Dataset& right) {
  std::vector<size_t> right_mapping;
  RegionSchema schema = MergeWithMapping(left.schema(), right.schema(),
                                         &right_mapping);
  Dataset out("UNION", schema);
  for (const auto& s : left.samples()) {
    Sample ns(gdm::DeriveSampleId("UNION-L", {s.id}));
    ns.metadata = s.metadata;
    ns.regions.reserve(s.regions.size());
    for (const auto& r : s.regions) {
      GenomicRegion nr(r.chrom, r.left, r.right, r.strand);
      nr.values = r.values;
      nr.values.resize(schema.size());  // extra slots default to NULL
      ns.regions.push_back(std::move(nr));
    }
    AddProvenance(&ns, "UNION-L", {s.id});
    out.AddSample(std::move(ns));
  }
  for (const auto& s : right.samples()) {
    Sample ns(gdm::DeriveSampleId("UNION-R", {s.id}));
    ns.metadata = s.metadata;
    ns.regions.reserve(s.regions.size());
    for (const auto& r : s.regions) {
      GenomicRegion nr(r.chrom, r.left, r.right, r.strand);
      nr.values.resize(schema.size());
      for (size_t i = 0; i < r.values.size(); ++i) {
        nr.values[right_mapping[i]] = r.values[i];
      }
      ns.regions.push_back(std::move(nr));
    }
    AddProvenance(&ns, "UNION-R", {s.id});
    out.AddSample(std::move(ns));
  }
  return out;
}

Result<gdm::Dataset> Operators::Difference(const DifferenceParams& params,
                                           const Dataset& left,
                                           const Dataset& right) {
  Dataset out("DIFFERENCE", left.schema());
  for (const auto& ls : left.samples()) {
    // Pool the regions of every matching right sample.
    std::vector<const Sample*> matching;
    for (const auto& rs : right.samples()) {
      if (JoinbyMatch(params.joinby, ls.metadata, rs.metadata)) {
        matching.push_back(&rs);
      }
    }
    Sample ns(ls.id);
    ns.metadata = ls.metadata;
    if (matching.empty()) {
      ns.regions = ls.regions;
    } else {
      std::vector<GenomicRegion> negatives = ConcatRegions(matching);
      std::vector<char> flags = interval::ExistsOverlap(ls.regions, negatives);
      for (size_t i = 0; i < ls.regions.size(); ++i) {
        if (!flags[i]) ns.regions.push_back(ls.regions[i]);
      }
    }
    out.AddSample(std::move(ns));
  }
  return out;
}

Result<gdm::Dataset> Operators::Semijoin(const SemijoinParams& params,
                                         const Dataset& left,
                                         const Dataset& right) {
  if (params.attrs.empty()) {
    return Status::InvalidArgument("SEMIJOIN requires at least one attribute");
  }
  Dataset out("SEMIJOIN", left.schema());
  for (const auto& ls : left.samples()) {
    bool matched = false;
    for (const auto& rs : right.samples()) {
      if (JoinbyMatch(params.attrs, ls.metadata, rs.metadata)) {
        matched = true;
        break;
      }
    }
    if (matched != params.negated) out.AddSample(ls);
  }
  return out;
}

bool Operators::JoinbyMatch(const std::vector<std::string>& joinby,
                            const Metadata& a, const Metadata& b) {
  for (const auto& attr : joinby) {
    auto va = a.ValuesOf(attr);
    auto vb = b.ValuesOf(attr);
    bool shared = false;
    for (const auto& x : va) {
      for (const auto& y : vb) {
        if (x == y) {
          shared = true;
          break;
        }
      }
      if (shared) break;
    }
    if (!shared) return false;
  }
  return true;
}

gdm::RegionSchema Operators::JoinOutputSchema(const RegionSchema& left,
                                              const RegionSchema& right) {
  return RegionSchema::Concat(left, right, "right_");
}

gdm::Sample Operators::DerivedSample(const std::string& op_tag,
                                     const Sample& left, const Sample& right,
                                     bool prefix_left_right) {
  Sample ns(gdm::DeriveSampleId(op_tag, {left.id, right.id}));
  if (prefix_left_right) {
    ns.metadata = Metadata::Union(left.metadata.WithPrefix("left."),
                                  right.metadata.WithPrefix("right."));
  } else {
    ns.metadata = Metadata::Union(left.metadata, right.metadata);
  }
  AddProvenance(&ns, op_tag, {left.id, right.id});
  return ns;
}

gdm::Sample Operators::DerivedGroupSample(
    const std::string& op_tag, const std::vector<const Sample*>& members) {
  std::vector<gdm::SampleId> parents;
  Metadata meta;
  for (const auto* m : members) {
    parents.push_back(m->id);
    meta = Metadata::Union(meta, m->metadata);
  }
  Sample ns(gdm::DeriveSampleId(op_tag, parents));
  ns.metadata = std::move(meta);
  AddProvenance(&ns, op_tag, parents);
  return ns;
}

gdm::Sample Operators::JoinPair(const JoinParams& params,
                                const Sample& left_sample,
                                const Sample& right_sample) {
  Sample ns = DerivedSample("JOIN", left_sample, right_sample, true);

  const auto& pred = params.predicate;
  auto emit = [&](size_t li, size_t ri) {
    JoinEmit(params, left_sample.regions[li], right_sample.regions[ri],
             &ns.regions);
  };

  if (pred.md_k > 0) {
    interval::NearestK(left_sample.regions, right_sample.regions,
                       static_cast<size_t>(pred.md_k), emit);
  } else {
    interval::DistanceJoin(left_sample.regions, right_sample.regions,
                           pred.min_dist == INT64_MIN ? INT64_MIN / 4
                                                      : pred.min_dist,
                           pred.max_dist, emit);
  }
  ns.SortNow();
  return ns;
}

bool Operators::JoinEmit(const JoinParams& params, const GenomicRegion& lr,
                         const GenomicRegion& rr,
                         std::vector<GenomicRegion>* out) {
  const auto& pred = params.predicate;
  int64_t d = lr.DistanceTo(rr);
  if (d < pred.min_dist || d > pred.max_dist) return false;
  if (pred.upstream || pred.downstream) {
    // Strand-aware relative position of the right region w.r.t. the left.
    bool minus = lr.strand == gdm::Strand::kMinus;
    bool right_is_up = minus ? rr.left >= lr.right : rr.right <= lr.left;
    bool right_is_down = minus ? rr.right <= lr.left : rr.left >= lr.right;
    if (pred.upstream && !right_is_up) return false;
    if (pred.downstream && !right_is_down) return false;
  }
  GenomicRegion out_region;
  switch (params.output) {
    case JoinOutput::kLeft:
      out_region = GenomicRegion(lr.chrom, lr.left, lr.right, lr.strand);
      break;
    case JoinOutput::kRight:
      out_region = GenomicRegion(rr.chrom, rr.left, rr.right, rr.strand);
      break;
    case JoinOutput::kIntersection:
      if (!lr.Overlaps(rr)) return false;  // INT only emits overlapping pairs
      out_region = interval::IntersectCoords(lr, rr);
      break;
    case JoinOutput::kContig:
      if (lr.chrom != rr.chrom) return false;
      out_region = interval::SpanCoords(lr, rr);
      break;
  }
  out_region.values.reserve(lr.values.size() + rr.values.size());
  out_region.values.insert(out_region.values.end(), lr.values.begin(),
                           lr.values.end());
  out_region.values.insert(out_region.values.end(), rr.values.begin(),
                           rr.values.end());
  out->push_back(std::move(out_region));
  return true;
}

Result<gdm::Dataset> Operators::Join(const JoinParams& params,
                                     const Dataset& left,
                                     const Dataset& right) {
  if (!params.predicate.has_upper && params.predicate.md_k == 0) {
    return Status::InvalidArgument(
        "genometric JOIN requires an upper distance bound (DLE/DLT) or MD(k)");
  }
  Dataset out("JOIN", JoinOutputSchema(left.schema(), right.schema()));
  for (const auto& ls : left.samples()) {
    for (const auto& rs : right.samples()) {
      if (!JoinbyMatch(params.joinby, ls.metadata, rs.metadata)) continue;
      out.AddSample(JoinPair(params, ls, rs));
    }
  }
  return out;
}

std::vector<AggregateSpec> Operators::EffectiveMapAggregates(
    const MapParams& params) {
  if (!params.aggregates.empty()) return params.aggregates;
  return {AggregateSpec{"count", AggFunc::kCount, ""}};
}

Result<gdm::RegionSchema> Operators::MapOutputSchema(
    const MapParams& params, const RegionSchema& ref_schema) {
  RegionSchema schema = ref_schema;
  AppendAggAttrs(EffectiveMapAggregates(params), &schema);
  return schema;
}

gdm::Sample Operators::MapPair(const std::vector<AggregateSpec>& specs,
                               const std::vector<size_t>& agg_inputs,
                               const Sample& ref_sample,
                               const Sample& exp_sample) {
  Sample ns = DerivedSample("MAP", ref_sample, exp_sample, false);

  // One accumulator row per ref region.
  std::vector<std::vector<AggAccumulator>> accs(ref_sample.regions.size());
  for (auto& row : accs) {
    row.reserve(specs.size());
    for (const auto& spec : specs) row.emplace_back(spec.func);
  }
  interval::OverlapJoin(
      ref_sample.regions, exp_sample.regions, [&](size_t ri, size_t ei) {
        auto& row = accs[ri];
        for (size_t a = 0; a < specs.size(); ++a) {
          if (agg_inputs[a] == SIZE_MAX) {
            row[a].AddRegion();
          } else {
            row[a].Add(exp_sample.regions[ei].values[agg_inputs[a]]);
          }
        }
      });
  ns.regions.reserve(ref_sample.regions.size());
  for (size_t ri = 0; ri < ref_sample.regions.size(); ++ri) {
    GenomicRegion nr = ref_sample.regions[ri];
    for (auto& acc : accs[ri]) nr.values.push_back(acc.Finish());
    ns.regions.push_back(std::move(nr));
  }
  return ns;
}

Result<gdm::Dataset> Operators::Map(const MapParams& params,
                                    const Dataset& ref, const Dataset& exp) {
  auto specs = EffectiveMapAggregates(params);
  GDMS_ASSIGN_OR_RETURN(std::vector<size_t> inputs,
                        ResolveAggInputs(specs, exp.schema()));
  GDMS_ASSIGN_OR_RETURN(RegionSchema schema,
                        MapOutputSchema(params, ref.schema()));
  Dataset out("MAP", schema);
  for (const auto& rs : ref.samples()) {
    for (const auto& es : exp.samples()) {
      if (!JoinbyMatch(params.joinby, rs.metadata, es.metadata)) continue;
      out.AddSample(MapPair(specs, inputs, rs, es));
    }
  }
  return out;
}

Result<gdm::Dataset> Operators::Cover(const CoverParams& params,
                                      const Dataset& in) {
  GDMS_ASSIGN_OR_RETURN(std::vector<size_t> inputs,
                        ResolveAggInputs(params.aggregates, in.schema()));
  // Output schema: acc_index for HISTOGRAM/SUMMIT, then aggregates.
  RegionSchema schema;
  bool with_acc = params.variant == CoverVariant::kHistogram ||
                  params.variant == CoverVariant::kSummit;
  if (with_acc) (void)schema.AddAttr("acc_index", AttrType::kInt);
  AppendAggAttrs(params.aggregates, &schema);
  Dataset out(CoverVariantName(params.variant), schema);

  std::map<std::string, std::vector<const Sample*>> groups;
  for (const auto& s : in.samples()) {
    std::string key =
        params.groupby.empty() ? "" : s.metadata.FirstValue(params.groupby);
    groups[key].push_back(&s);
  }

  for (const auto& [key, members] : groups) {
    std::vector<GenomicRegion> pooled = ConcatRegions(members);
    auto profile = interval::AccumulationProfile(pooled);
    interval::CoverBounds bounds{params.min_acc, params.max_acc};

    std::vector<GenomicRegion> regions;
    std::vector<int64_t> counts;
    switch (params.variant) {
      case CoverVariant::kCover:
        regions = interval::Cover(profile, bounds);
        break;
      case CoverVariant::kFlat:
        regions = interval::Flat(profile, bounds, pooled);
        break;
      case CoverVariant::kHistogram:
        regions = interval::Histogram(profile, bounds, &counts);
        break;
      case CoverVariant::kSummit:
        regions = interval::Summit(profile, bounds, &counts);
        break;
    }

    Sample ns = DerivedGroupSample(CoverVariantName(params.variant), members);
    if (!params.groupby.empty()) ns.metadata.Add(params.groupby, key);

    // Aggregates over the input regions intersecting each output region.
    std::vector<std::vector<AggAccumulator>> accs(regions.size());
    if (!params.aggregates.empty()) {
      for (auto& row : accs) {
        row.reserve(params.aggregates.size());
        for (const auto& spec : params.aggregates) row.emplace_back(spec.func);
      }
      interval::OverlapJoin(regions, pooled, [&](size_t oi, size_t ii) {
        auto& row = accs[oi];
        for (size_t a = 0; a < params.aggregates.size(); ++a) {
          if (inputs[a] == SIZE_MAX) {
            row[a].AddRegion();
          } else {
            row[a].Add(pooled[ii].values[inputs[a]]);
          }
        }
      });
    }
    ns.regions.reserve(regions.size());
    for (size_t i = 0; i < regions.size(); ++i) {
      GenomicRegion nr = regions[i];
      if (with_acc) nr.values.push_back(Value(counts[i]));
      if (!params.aggregates.empty()) {
        for (auto& acc : accs[i]) nr.values.push_back(acc.Finish());
      }
      ns.regions.push_back(std::move(nr));
    }
    out.AddSample(std::move(ns));
  }
  return out;
}

}  // namespace gdms::core
