#ifndef GDMS_CORE_OPERATORS_H_
#define GDMS_CORE_OPERATORS_H_

#include "common/status.h"
#include "core/plan.h"
#include "gdm/dataset.h"

namespace gdms::core {

/// \brief Reference (sequential) implementations of every GMQL operator.
///
/// These definitions are the semantics of the language: the parallel
/// executors in src/engine must produce datasets equal to these up to sample
/// order. Each operator computes BOTH regions and metadata, connected by
/// sample ids, and stamps a `_provenance` metadata entry on derived samples
/// (paper, Section 2: "knowing why resulting regions were produced is quite
/// relevant").
class Operators {
 public:
  Operators() = delete;

  static Result<gdm::Dataset> Select(const SelectParams& params,
                                     const gdm::Dataset& in);
  static Result<gdm::Dataset> Project(const ProjectParams& params,
                                      const gdm::Dataset& in);
  static Result<gdm::Dataset> Extend(const ExtendParams& params,
                                     const gdm::Dataset& in);
  static Result<gdm::Dataset> Merge(const MergeParams& params,
                                    const gdm::Dataset& in);
  static Result<gdm::Dataset> Group(const GroupParams& params,
                                    const gdm::Dataset& in);
  static Result<gdm::Dataset> Order(const OrderParams& params,
                                    const gdm::Dataset& in);
  static Result<gdm::Dataset> Union(const gdm::Dataset& left,
                                    const gdm::Dataset& right);
  static Result<gdm::Dataset> Difference(const DifferenceParams& params,
                                         const gdm::Dataset& left,
                                         const gdm::Dataset& right);
  /// Metadata semijoin: keeps left samples that share a value on every
  /// listed attribute with at least one right sample (or with none, when
  /// negated). Regions, metadata, ids and schema pass through untouched.
  static Result<gdm::Dataset> Semijoin(const SemijoinParams& params,
                                       const gdm::Dataset& left,
                                       const gdm::Dataset& right);
  static Result<gdm::Dataset> Join(const JoinParams& params,
                                   const gdm::Dataset& left,
                                   const gdm::Dataset& right);
  static Result<gdm::Dataset> Map(const MapParams& params,
                                  const gdm::Dataset& ref,
                                  const gdm::Dataset& exp);
  static Result<gdm::Dataset> Cover(const CoverParams& params,
                                    const gdm::Dataset& in);

  /// The effective aggregate list of a MAP: params.aggregates, or the
  /// default single `count AS COUNT` when empty.
  static std::vector<AggregateSpec> EffectiveMapAggregates(
      const MapParams& params);

  /// Output schema of a MAP with the given inputs (ref schema + aggregate
  /// columns, deduplicating collisions with a numeric suffix).
  static Result<gdm::RegionSchema> MapOutputSchema(
      const MapParams& params, const gdm::RegionSchema& ref_schema);

  /// Output schema of a genometric JOIN (left concat right, with renames).
  static gdm::RegionSchema JoinOutputSchema(const gdm::RegionSchema& left,
                                            const gdm::RegionSchema& right);

  /// True when two samples match on every joinby attribute (sharing at
  /// least one value per attribute). An empty list always matches.
  static bool JoinbyMatch(const std::vector<std::string>& joinby,
                          const gdm::Metadata& a, const gdm::Metadata& b);

  /// Computes one MAP output sample for the pair (ref_sample, exp_sample);
  /// exposed so the parallel engine can reuse the exact region semantics.
  static gdm::Sample MapPair(const std::vector<AggregateSpec>& specs,
                             const std::vector<size_t>& agg_inputs,
                             const gdm::Sample& ref_sample,
                             const gdm::Sample& exp_sample);

  /// Computes the JOIN output regions for one sample pair; exposed for the
  /// parallel engine.
  static gdm::Sample JoinPair(const JoinParams& params,
                              const gdm::Sample& left_sample,
                              const gdm::Sample& right_sample);

  /// Builds the derived sample shell (content-hashed id, merged metadata,
  /// `_provenance` stamp) for a binary operation over `parents`. With
  /// `prefix_left_right`, parent metadata is namespaced "left." / "right."
  /// (JOIN); otherwise it is unioned as-is (MAP). Regions are left empty.
  static gdm::Sample DerivedSample(const std::string& op_tag,
                                   const gdm::Sample& left,
                                   const gdm::Sample& right,
                                   bool prefix_left_right);

  /// N-ary variant used by MERGE / GROUP / COVER groups: unioned metadata of
  /// all members, content-hashed id, `_provenance` stamp. Regions empty.
  static gdm::Sample DerivedGroupSample(
      const std::string& op_tag,
      const std::vector<const gdm::Sample*>& members);

  /// Applies the genometric predicate and output option to one candidate
  /// region pair, appending the output region on success. Returns true when
  /// a region was emitted. Shared by the reference and parallel JOINs.
  static bool JoinEmit(const JoinParams& params, const gdm::GenomicRegion& lr,
                       const gdm::GenomicRegion& rr,
                       std::vector<gdm::GenomicRegion>* out);
};

}  // namespace gdms::core

#endif  // GDMS_CORE_OPERATORS_H_
