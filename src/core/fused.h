#ifndef GDMS_CORE_FUSED_H_
#define GDMS_CORE_FUSED_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/plan.h"
#include "gdm/dataset.h"

namespace gdms::core {

/// \brief Bound consumer stages of a fused operator chain.
///
/// A kFused plan node carries a producer stage followed by unary consumer
/// stages (SELECT / PROJECT / EXTEND). The producer's executor finishes each
/// output sample exactly once; a FusedTail applies every consumer stage to
/// that sample in place — the downstream operators never see (or allocate) an
/// intermediate dataset. Binding resolves predicates, projection indexes and
/// aggregate inputs against the producer's output schema once; ApplySample is
/// then const and safe to call concurrently from worker threads (the same
/// contract as a bound RegionPredicate).
class FusedTail {
 public:
  FusedTail() = default;

  /// Binds the consumer stages (`node.fused_stages[1..]`) against the
  /// producer's output schema. Errors mirror the unfused operators (unknown
  /// attribute in a predicate, projection or aggregate).
  static Result<FusedTail> Bind(const PlanNode& node,
                                const gdm::RegionSchema& producer_schema);

  /// Region schema after every stage (PROJECT rewrites it; SELECT and
  /// EXTEND pass it through).
  const gdm::RegionSchema& output_schema() const { return schema_; }

  /// Number of consumer stages; 0 means the tail is a no-op.
  size_t num_stages() const { return stages_.size(); }

  /// Dataset name the final stage's unfused operator would have produced.
  const char* output_name() const;

  /// Runs every stage over one finished producer sample, mutating it in
  /// place. Returns false when a SELECT's metadata predicate drops the
  /// sample (the caller must not emit it).
  bool ApplySample(gdm::Sample* sample) const;

 private:
  struct Stage;
  gdm::RegionSchema schema_;
  std::vector<std::shared_ptr<const Stage>> stages_;
};

}  // namespace gdms::core

#endif  // GDMS_CORE_FUSED_H_
