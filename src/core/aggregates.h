#ifndef GDMS_CORE_AGGREGATES_H_
#define GDMS_CORE_AGGREGATES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "gdm/dataset.h"
#include "gdm/schema.h"
#include "gdm/value.h"

namespace gdms::core {

/// Aggregate functions available to MAP / EXTEND / GROUP / COVER (paper,
/// Section 2: "typed and named attributes serve the purpose of any numerical
/// or statistical operation across compatible values").
enum class AggFunc {
  kCount,   ///< number of regions; needs no input attribute
  kSum,
  kAvg,
  kMin,
  kMax,
  kMedian,
  kStd,     ///< sample standard deviation (N-1 denominator; 0 for N<2)
  kBag,     ///< space-joined distinct values, sorted (STRING)
};

const char* AggFuncName(AggFunc f);
Result<AggFunc> ParseAggFunc(const std::string& name);

/// Result type of an aggregate: COUNT is INT, BAG is STRING, the rest DOUBLE.
gdm::AttrType AggOutputType(AggFunc f);

/// One requested aggregate: `output_name AS func(input_attr)`.
struct AggregateSpec {
  std::string output_name;
  AggFunc func = AggFunc::kCount;
  /// Attribute of the aggregated regions; empty for COUNT.
  std::string input_attr;

  std::string ToString() const;
};

/// \brief Streaming accumulator for one AggregateSpec.
///
/// Add() each region's attribute value (resolved by the caller), then
/// Finish(). NULL values are skipped for every function except COUNT, which
/// counts regions regardless.
class AggAccumulator {
 public:
  explicit AggAccumulator(AggFunc func) : func_(func) {}

  void Add(const gdm::Value& v);
  /// Convenience for COUNT: count a region without resolving a value.
  void AddRegion() { ++region_count_; }

  gdm::Value Finish() const;

 private:
  AggFunc func_;
  int64_t region_count_ = 0;
  int64_t non_null_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::vector<double> numbers_;        // MEDIAN only
  std::vector<std::string> strings_;   // BAG only
};

/// Resolves the schema index of each spec's input attribute; COUNT specs get
/// index SIZE_MAX. Errors when an attribute is missing.
Result<std::vector<size_t>> ResolveAggInputs(
    const std::vector<AggregateSpec>& specs, const gdm::RegionSchema& schema);

/// Evaluates all specs over a set of regions (by index into `regions`).
/// `inputs` comes from ResolveAggInputs.
std::vector<gdm::Value> EvaluateAggregates(
    const std::vector<AggregateSpec>& specs, const std::vector<size_t>& inputs,
    const std::vector<gdm::GenomicRegion>& regions,
    const std::vector<size_t>& selected);

}  // namespace gdms::core

#endif  // GDMS_CORE_AGGREGATES_H_
