#include "core/fused.h"

#include <algorithm>
#include <utility>

#include "core/aggregates.h"
#include "core/predicates.h"

namespace gdms::core {

using gdm::GenomicRegion;
using gdm::RegionSchema;
using gdm::Sample;

/// One bound consumer stage. Only the fields of the stage's kind are set.
struct FusedTail::Stage {
  OpKind kind = OpKind::kSelect;

  // SELECT: the metadata predicate is shared with the plan node (stateless
  // Eval); the region predicate is a private clone bound to this stage's
  // input schema.
  MetaPredicate::Ptr select_meta;
  RegionPredicate::Ptr select_region;

  // PROJECT: input-schema indexes of kept attributes, bound new-attribute
  // expressions, and the metadata projection.
  std::vector<size_t> keep_indexes;
  std::vector<RegionExpr::Ptr> new_exprs;
  std::vector<std::string> keep_meta;
  bool meta_all = true;

  // EXTEND: aggregate specs plus their resolved input indexes.
  std::vector<AggregateSpec> aggregates;
  std::vector<size_t> agg_inputs;
};

Result<FusedTail> FusedTail::Bind(const PlanNode& node,
                                  const RegionSchema& producer_schema) {
  FusedTail tail;
  tail.schema_ = producer_schema;
  for (size_t i = 1; i < node.fused_stages.size(); ++i) {
    const PlanNode& stage_node = *node.fused_stages[i];
    auto stage = std::make_shared<Stage>();
    stage->kind = stage_node.kind;
    switch (stage_node.kind) {
      case OpKind::kSelect: {
        stage->select_meta = stage_node.select.meta;
        stage->select_region = stage_node.select.region->Clone();
        GDMS_RETURN_NOT_OK(stage->select_region->Bind(tail.schema_));
        break;
      }
      case OpKind::kProject: {
        const ProjectParams& params = stage_node.project;
        RegionSchema schema;
        if (params.keep_all) {
          schema = tail.schema_;
          for (size_t k = 0; k < tail.schema_.size(); ++k) {
            stage->keep_indexes.push_back(k);
          }
        } else {
          for (const auto& name : params.keep_attrs) {
            auto idx = tail.schema_.IndexOf(name);
            if (!idx.has_value()) {
              return Status::InvalidArgument(
                  "PROJECT keeps unknown attribute: " + name);
            }
            stage->keep_indexes.push_back(*idx);
            GDMS_RETURN_NOT_OK(
                schema.AddAttr(name, tail.schema_.attr(*idx).type));
          }
        }
        for (const auto& na : params.new_attrs) {
          RegionExpr::Ptr expr = na.expr->Clone();
          GDMS_RETURN_NOT_OK(expr->Bind(tail.schema_));
          GDMS_RETURN_NOT_OK(
              schema.AddAttr(na.name, expr->OutputType(tail.schema_)));
          stage->new_exprs.push_back(std::move(expr));
        }
        stage->keep_meta = params.keep_meta;
        stage->meta_all = params.meta_all;
        tail.schema_ = std::move(schema);
        break;
      }
      case OpKind::kExtend: {
        stage->aggregates = stage_node.extend.aggregates;
        GDMS_ASSIGN_OR_RETURN(
            stage->agg_inputs,
            ResolveAggInputs(stage->aggregates, tail.schema_));
        break;
      }
      default:
        return Status::Internal(std::string("non-fusable tail stage: ") +
                                OpKindName(stage_node.kind));
    }
    tail.stages_.push_back(std::move(stage));
  }
  return tail;
}

const char* FusedTail::output_name() const {
  if (stages_.empty()) return "FUSED";
  return OpKindName(stages_.back()->kind);
}

bool FusedTail::ApplySample(Sample* sample) const {
  for (const auto& stage : stages_) {
    switch (stage->kind) {
      case OpKind::kSelect: {
        if (!stage->select_meta->Eval(sample->metadata)) return false;
        auto kept = std::remove_if(
            sample->regions.begin(), sample->regions.end(),
            [&](const GenomicRegion& r) {
              return !stage->select_region->Eval(r);
            });
        sample->regions.erase(kept, sample->regions.end());
        break;
      }
      case OpKind::kProject: {
        for (auto& r : sample->regions) {
          std::vector<gdm::Value> values;
          values.reserve(stage->keep_indexes.size() +
                         stage->new_exprs.size());
          for (size_t ki : stage->keep_indexes) {
            values.push_back(r.values[ki]);
          }
          for (const auto& expr : stage->new_exprs) {
            values.push_back(expr->Eval(r));
          }
          r.values = std::move(values);
        }
        if (!stage->meta_all) {
          gdm::Metadata projected;
          for (const auto& attr : stage->keep_meta) {
            for (const auto& value : sample->metadata.ValuesOf(attr)) {
              projected.Add(attr, value);
            }
          }
          sample->metadata = std::move(projected);
        }
        break;
      }
      case OpKind::kExtend: {
        std::vector<size_t> all(sample->regions.size());
        for (size_t i = 0; i < all.size(); ++i) all[i] = i;
        auto values = EvaluateAggregates(stage->aggregates, stage->agg_inputs,
                                         sample->regions, all);
        for (size_t a = 0; a < stage->aggregates.size(); ++a) {
          sample->metadata.Add(stage->aggregates[a].output_name,
                               values[a].ToString());
        }
        break;
      }
      default:
        break;
    }
  }
  // Stages mutate regions in place; a stale chromosome index must not
  // survive the (size-preserving) PROJECT rewrite.
  sample->InvalidateChromIndex();
  return true;
}

}  // namespace gdms::core
