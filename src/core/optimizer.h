#ifndef GDMS_CORE_OPTIMIZER_H_
#define GDMS_CORE_OPTIMIZER_H_

#include "core/plan.h"

namespace gdms::core {

/// Statistics of one optimization pass, for the E11 experiment report.
struct OptimizerStats {
  size_t selects_fused = 0;
  size_t selects_pushed_through_union = 0;
  size_t nodes_deduplicated = 0;  // common-subexpression eliminations
  size_t nodes_before = 0;
  size_t nodes_after = 0;
};

/// \brief The logical optimizer.
///
/// Rewrites applied (paper, Section 4.2 mentions a "logical optimizer"
/// shared by both parallel encodings):
///   1. SELECT fusion       — SELECT(p2)(SELECT(p1)(X)) => SELECT(p1 AND p2)(X)
///   2. Meta-select pushdown through UNION — a metadata-only SELECT above a
///      UNION is applied to both branches, shrinking the (expensive) schema-
///      merging union input.
///   3. Common-subexpression elimination — structurally identical subplans
///      (by PlanNode::Signature) collapse to one shared node, which the
///      memoizing runner then evaluates once.
///
/// Dead-variable elimination is inherent: evaluation starts from the
/// materialized sinks, so unreferenced statements are never run.
class Optimizer {
 public:
  /// Optimizes the program in place; returns pass statistics.
  static OptimizerStats Optimize(Program* program);
};

}  // namespace gdms::core

#endif  // GDMS_CORE_OPTIMIZER_H_
