#ifndef GDMS_CORE_OPTIMIZER_H_
#define GDMS_CORE_OPTIMIZER_H_

#include "core/plan.h"

namespace gdms::core {

/// Statistics of one optimization pass, for the E11 experiment report.
struct OptimizerStats {
  size_t selects_fused = 0;
  size_t selects_pushed_through_union = 0;
  size_t nodes_deduplicated = 0;  // common-subexpression eliminations
  size_t nodes_before = 0;
  size_t nodes_after = 0;
};

/// Statistics of the per-partition chain fusion pass.
struct FusionStats {
  size_t chains_fused = 0;  ///< kFused nodes created
  size_t stages_fused = 0;  ///< consumer stages folded into a producer
};

/// \brief The logical optimizer.
///
/// Rewrites applied (paper, Section 4.2 mentions a "logical optimizer"
/// shared by both parallel encodings):
///   1. SELECT fusion       — SELECT(p2)(SELECT(p1)(X)) => SELECT(p1 AND p2)(X)
///   2. Meta-select pushdown through UNION — a metadata-only SELECT above a
///      UNION is applied to both branches, shrinking the (expensive) schema-
///      merging union input.
///   3. Common-subexpression elimination — structurally identical subplans
///      (by PlanNode::Signature) collapse to one shared node, which the
///      memoizing runner then evaluates once.
///
/// Dead-variable elimination is inherent: evaluation starts from the
/// materialized sinks, so unreferenced statements are never run.
class Optimizer {
 public:
  /// Optimizes the program in place; returns pass statistics.
  static OptimizerStats Optimize(Program* program);

  /// \brief Physical rewrite: fuse adjacent per-partition stages.
  ///
  /// Collapses chains where a node's SINGLE consumer is a per-partition-
  /// compatible unary operator into one kFused node, so the engine pipes
  /// each partition's finished sample straight into the downstream kernel
  /// instead of materializing an intermediate dataset between the two plan
  /// nodes. Eligibility:
  ///   - producer: SELECT, MAP, JOIN, DIFFERENCE or COVER (the engine's
  ///     data-parallel operators), or an already-fused chain (chains grow);
  ///   - consumer: unary SELECT, PROJECT or EXTEND — each transforms one
  ///     finished sample independently, so it folds into the producer's
  ///     per-sample assembly stage. MAP/JOIN as consumers are binary and
  ///     re-partition their (sorted) input, so they stay unfused.
  ///   - the producer has exactly one consumer edge (MATERIALIZE counts:
  ///     a directly materialized result must exist as a dataset).
  ///
  /// Runs after Optimize (fusion sees the CSE'd DAG) and only when the
  /// runner's ExecOptions keep fusion enabled (`--no-fusion` escape hatch).
  static FusionStats FusePerPartitionChains(Program* program);
};

}  // namespace gdms::core

#endif  // GDMS_CORE_OPTIMIZER_H_
