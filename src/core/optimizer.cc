#include "core/optimizer.h"

#include <unordered_map>
#include <unordered_set>

namespace gdms::core {

namespace {

/// True when a SELECT has no region predicate component.
bool IsMetaOnlySelect(const PlanNode& node) {
  return node.kind == OpKind::kSelect &&
         node.select.region->ToString() == "true";
}

size_t CountNodes(const Program& program) {
  std::unordered_set<const PlanNode*> seen;
  std::vector<const PlanNode*> stack;
  for (const auto& s : program.sinks) stack.push_back(s.get());
  while (!stack.empty()) {
    const PlanNode* n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    for (const auto& c : n->children) stack.push_back(c.get());
  }
  return seen.size();
}

class Pass {
 public:
  explicit Pass(OptimizerStats* stats) : stats_(stats) {}

  PlanNode::Ptr Rewrite(const PlanNode::Ptr& node) {
    // Pin the node for the lifetime of the pass: the memo tables key by raw
    // pointer, and without pinning a rewritten-away node could be freed and
    // its address reused by a new node, resurrecting a stale memo entry.
    pinned_.push_back(node);
    auto it = rewritten_.find(node.get());
    if (it != rewritten_.end()) return it->second;
    // Rewrite children first.
    PlanNode::Ptr result = node;
    for (auto& child : result->children) {
      child = Rewrite(child);
    }
    // Rule 1: fuse SELECT over SELECT.
    if (result->kind == OpKind::kSelect && result->children.size() == 1 &&
        result->children[0]->kind == OpKind::kSelect) {
      const PlanNode::Ptr inner = result->children[0];
      SelectParams fused;
      fused.meta =
          MetaPredicate::And(inner->select.meta, result->select.meta);
      fused.region =
          RegionPredicate::And(inner->select.region, result->select.region);
      result = PlanNode::Select(inner->children[0], std::move(fused));
      ++stats_->selects_fused;
      // The fused node may expose new opportunities.
      result = Rewrite(result);
      rewritten_[node.get()] = result;
      return result;
    }
    // Rule 2: push metadata-only SELECT through UNION.
    if (IsMetaOnlySelect(*result) && result->children.size() == 1 &&
        result->children[0]->kind == OpKind::kUnion) {
      const PlanNode::Ptr u = result->children[0];
      SelectParams left_params;
      left_params.meta = result->select.meta;
      SelectParams right_params;
      right_params.meta = result->select.meta;
      result = PlanNode::Union(
          Rewrite(PlanNode::Select(u->children[0], std::move(left_params))),
          Rewrite(PlanNode::Select(u->children[1], std::move(right_params))));
      ++stats_->selects_pushed_through_union;
    }
    // Rule 3: CSE by canonical signature.
    std::string sig = result->Signature();
    auto cse = canonical_.find(sig);
    if (cse != canonical_.end()) {
      if (cse->second != result) ++stats_->nodes_deduplicated;
      result = cse->second;
    } else {
      canonical_.emplace(std::move(sig), result);
    }
    rewritten_[node.get()] = result;
    return result;
  }

 private:
  OptimizerStats* stats_;
  std::vector<PlanNode::Ptr> pinned_;
  std::unordered_map<const PlanNode*, PlanNode::Ptr> rewritten_;
  std::unordered_map<std::string, PlanNode::Ptr> canonical_;
};

}  // namespace

OptimizerStats Optimizer::Optimize(Program* program) {
  OptimizerStats stats;
  stats.nodes_before = CountNodes(*program);
  Pass pass(&stats);
  for (auto& sink : program->sinks) {
    sink = pass.Rewrite(sink);
  }
  stats.nodes_after = CountNodes(*program);
  return stats;
}

namespace {

bool IsFusableProducer(OpKind kind) {
  switch (kind) {
    case OpKind::kSelect:
    case OpKind::kMap:
    case OpKind::kJoin:
    case OpKind::kDifference:
    case OpKind::kCover:
    case OpKind::kFused:
      return true;
    default:
      return false;
  }
}

bool IsFusableConsumer(const PlanNode& node) {
  return (node.kind == OpKind::kSelect || node.kind == OpKind::kProject ||
          node.kind == OpKind::kExtend) &&
         node.children.size() == 1;
}

/// Fusion rewriter: bottom-up over the (possibly shared) DAG with a memo so
/// a shared subtree rewrites to one shared fused node.
class FusionPass {
 public:
  FusionPass(FusionStats* stats,
             std::unordered_map<const PlanNode*, size_t> consumers)
      : stats_(stats), consumers_(std::move(consumers)) {}

  PlanNode::Ptr Rewrite(const PlanNode::Ptr& node) {
    pinned_.push_back(node);
    auto it = rewritten_.find(node.get());
    if (it != rewritten_.end()) return it->second;
    PlanNode::Ptr result = node;
    for (auto& child : result->children) {
      child = Rewrite(child);
    }
    if (IsFusableConsumer(*result)) {
      const PlanNode::Ptr& producer = result->children[0];
      if (IsFusableProducer(producer->kind) &&
          consumers_[producer.get()] == 1) {
        std::vector<PlanNode::Ptr> stages;
        if (producer->kind == OpKind::kFused) {
          stages = producer->fused_stages;
        } else {
          stages.push_back(producer);
          ++stats_->chains_fused;
        }
        stages.push_back(result);
        PlanNode::Ptr fused = PlanNode::Fused(std::move(stages));
        // The chain head's consumers become the fused node's, so a yet
        // longer chain can keep growing on top of it.
        consumers_[fused.get()] = consumers_[result.get()];
        ++stats_->stages_fused;
        rewritten_[node.get()] = fused;
        return fused;
      }
    }
    rewritten_[node.get()] = result;
    return result;
  }

 private:
  FusionStats* stats_;
  std::unordered_map<const PlanNode*, size_t> consumers_;
  std::vector<PlanNode::Ptr> pinned_;
  std::unordered_map<const PlanNode*, PlanNode::Ptr> rewritten_;
};

}  // namespace

FusionStats Optimizer::FusePerPartitionChains(Program* program) {
  FusionStats stats;
  // Count consumer EDGES per node (a node referenced by two parents — or
  // twice by one — must be materialized once and shared, never fused).
  std::unordered_map<const PlanNode*, size_t> consumers;
  {
    std::unordered_set<const PlanNode*> seen;
    std::vector<const PlanNode*> stack;
    for (const auto& s : program->sinks) {
      // A sink payload is read out of the memo by name; count the sink
      // itself as one consumer edge of its subtree root.
      stack.push_back(s.get());
      ++consumers[s.get()];
    }
    while (!stack.empty()) {
      const PlanNode* n = stack.back();
      stack.pop_back();
      if (!seen.insert(n).second) continue;
      for (const auto& c : n->children) {
        ++consumers[c.get()];
        stack.push_back(c.get());
      }
    }
  }
  FusionPass pass(&stats, std::move(consumers));
  for (auto& sink : program->sinks) {
    sink = pass.Rewrite(sink);
  }
  return stats;
}

}  // namespace gdms::core
