#ifndef GDMS_CORE_PLAN_H_
#define GDMS_CORE_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/aggregates.h"
#include "core/predicates.h"

namespace gdms::core {

/// GMQL operators (paper, Section 2: classic algebraic transformations plus
/// the domain-specific COVER, MAP and GENOMETRIC JOIN).
enum class OpKind {
  kSource,       ///< leaf: a named dataset from the repository
  kSelect,
  kProject,
  kExtend,
  kMerge,
  kGroup,
  kOrder,
  kUnion,
  kDifference,
  kSemijoin,
  kJoin,
  kMap,
  kCover,
  kFused,        ///< physical chain of per-partition-compatible operators
  kMaterialize,  ///< sink marker
};

const char* OpKindName(OpKind kind);

/// COVER family variants.
enum class CoverVariant { kCover, kFlat, kSummit, kHistogram };

const char* CoverVariantName(CoverVariant v);

/// Output coordinate option of a genometric join.
enum class JoinOutput { kLeft, kRight, kIntersection, kContig };

const char* JoinOutputName(JoinOutput o);

/// \brief A genometric predicate: conjunction of distance atoms.
///
/// `DLE(n)`/`DLT(n)` upper-bound the genometric distance, `DGE(n)`/`DGT(n)`
/// lower-bound it, `MD(k)` restricts to the k nearest right-operand regions
/// of each left region, and UP / DOWN constrain the right region to lie
/// up/down-stream of the left one (strand-aware). At least one upper bound
/// (DLE/DLT) or MD(k) is required, otherwise the join is unbounded.
struct GenometricPredicate {
  int64_t min_dist = INT64_MIN;   ///< from DGE/DGT (exclusive handled below)
  int64_t max_dist = INT64_MAX;   ///< from DLE/DLT
  bool has_upper = false;
  int64_t md_k = 0;               ///< 0 = no MD clause
  bool upstream = false;
  bool downstream = false;

  std::string ToString() const;
};

struct SelectParams {
  MetaPredicate::Ptr meta = MetaPredicate::True();
  RegionPredicate::Ptr region = RegionPredicate::True();
};

struct ProjectParams {
  /// Variable attributes to keep, in order; empty + keep_all keeps all.
  std::vector<std::string> keep_attrs;
  bool keep_all = false;
  /// New attributes computed per region.
  struct NewAttr {
    std::string name;
    RegionExpr::Ptr expr;
  };
  std::vector<NewAttr> new_attrs;
  /// Metadata projection: when meta_all is false, only the listed metadata
  /// attributes survive.
  std::vector<std::string> keep_meta;
  bool meta_all = true;
};

struct ExtendParams {
  std::vector<AggregateSpec> aggregates;  ///< become metadata entries
};

struct MergeParams {
  /// When set, merge samples per distinct value of this metadata attribute
  /// instead of all into one.
  std::string groupby;
};

struct GroupParams {
  std::string meta_attr;                   ///< grouping key
  std::vector<AggregateSpec> aggregates;   ///< per-group region aggregates
};

struct OrderParams {
  std::string meta_attr;
  bool descending = false;
  /// 0 = keep all samples.
  size_t top = 0;
  /// Optional region clause: per sample, keep the region_top regions with
  /// the best region_attr value (output stays coordinate-sorted).
  std::string region_attr;
  bool region_descending = false;
  size_t region_top = 0;
};

struct DifferenceParams {
  /// Optional joinby metadata attributes: a right sample contributes to a
  /// left sample's subtraction only when all listed attributes share a value.
  std::vector<std::string> joinby;
};

struct SemijoinParams {
  /// Attributes that must share a value with at least one right sample.
  std::vector<std::string> attrs;
  /// Inverted semijoin: keep left samples matching NO right sample.
  bool negated = false;
};

struct JoinParams {
  GenometricPredicate predicate;
  JoinOutput output = JoinOutput::kLeft;
  std::vector<std::string> joinby;  ///< metadata equi-join attributes
};

struct MapParams {
  /// Empty list means the default single COUNT aggregate named "count".
  std::vector<AggregateSpec> aggregates;
  std::vector<std::string> joinby;
};

struct CoverParams {
  CoverVariant variant = CoverVariant::kCover;
  /// interval::CoverBounds values; kAny = -1, kAll = -2 sentinels.
  int64_t min_acc = 1;
  int64_t max_acc = -1;
  std::vector<AggregateSpec> aggregates;
  std::string groupby;  ///< optional: one output sample per metadata value
};

/// \brief One node of the logical query DAG.
///
/// Children are shared: the optimizer's common-subexpression elimination
/// makes identical subplans literally the same node, and the evaluator
/// memoizes per node.
struct PlanNode {
  using Ptr = std::shared_ptr<PlanNode>;

  OpKind kind = OpKind::kSource;
  std::vector<Ptr> children;

  /// kSource: dataset name in the repository. kMaterialize: output name.
  std::string name;

  SelectParams select;
  ProjectParams project;
  ExtendParams extend;
  MergeParams merge;
  GroupParams group;
  OrderParams order;
  DifferenceParams difference;
  SemijoinParams semijoin;
  JoinParams join;
  MapParams map;
  CoverParams cover;

  /// kFused only: the logical operator chain this node evaluates without
  /// materializing intermediate datasets. fused_stages[0] is the producer
  /// (its params are read through that stage node; this node's `children`
  /// are the producer's inputs) and every later stage is a unary consumer
  /// (SELECT / PROJECT / EXTEND) applied to the previous stage's output.
  /// Stage nodes are kept whole so executors that do not understand fusion
  /// can evaluate the chain stage by stage with identical semantics.
  std::vector<Ptr> fused_stages;

  /// Canonical rendering of the whole subtree; equal strings = equal plans
  /// (the CSE key).
  std::string Signature() const;

  /// kFused only: "MAP+SELECT"-style listing of the chain's logical
  /// operators, used by spans and EXPLAIN ANALYZE.
  std::string FusedChainName() const;

  static Ptr Source(std::string dataset_name);
  static Ptr Select(Ptr child, SelectParams params);
  static Ptr Project(Ptr child, ProjectParams params);
  static Ptr Extend(Ptr child, ExtendParams params);
  static Ptr Merge(Ptr child, MergeParams params);
  static Ptr Group(Ptr child, GroupParams params);
  static Ptr Order(Ptr child, OrderParams params);
  static Ptr Union(Ptr left, Ptr right);
  static Ptr Difference(Ptr left, Ptr right, DifferenceParams params);
  static Ptr Semijoin(Ptr left, Ptr right, SemijoinParams params);
  static Ptr Join(Ptr left, Ptr right, JoinParams params);
  static Ptr Map(Ptr ref, Ptr exp, MapParams params);
  static Ptr Cover(Ptr child, CoverParams params);
  /// Builds a fused chain node: children are stages[0]'s inputs.
  static Ptr Fused(std::vector<Ptr> stages);
  static Ptr Materialize(Ptr child, std::string output_name);
};

/// A parsed GMQL program: named sinks to evaluate.
struct Program {
  std::vector<PlanNode::Ptr> sinks;  ///< all kMaterialize nodes
};

}  // namespace gdms::core

#endif  // GDMS_CORE_PLAN_H_
