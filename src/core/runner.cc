#include "core/runner.h"

#include <chrono>

namespace gdms::core {

QueryRunner::QueryRunner()
    : owned_executor_(std::make_unique<ReferenceExecutor>()),
      executor_(owned_executor_.get()) {}

QueryRunner::QueryRunner(Executor* executor) : executor_(executor) {}

void QueryRunner::RegisterDataset(gdm::Dataset dataset) {
  std::string name = dataset.name();
  sources_.insert_or_assign(std::move(name), std::move(dataset));
}

const gdm::Dataset* QueryRunner::FindDataset(const std::string& name) const {
  auto it = sources_.find(name);
  return it == sources_.end() ? nullptr : &it->second;
}

std::vector<std::string> QueryRunner::DatasetNames() const {
  std::vector<std::string> out;
  out.reserve(sources_.size());
  for (const auto& [name, ds] : sources_) out.push_back(name);
  return out;
}

Result<std::map<std::string, gdm::Dataset>> QueryRunner::Run(
    const std::string& gmql_text) {
  GDMS_ASSIGN_OR_RETURN(Program program, Parser::Parse(gmql_text));
  return RunProgram(std::move(program));
}

Result<std::map<std::string, gdm::Dataset>> QueryRunner::RunProgram(
    Program program) {
  auto start = std::chrono::steady_clock::now();
  stats_ = RunStats{};
  executor_->ResetStats();
  if (optimize_) {
    stats_.optimizer = Optimizer::Optimize(&program);
  }
  std::map<const PlanNode*, gdm::Dataset> memo;
  std::map<std::string, gdm::Dataset> outputs;
  // Evaluate every sink first (the memo may be shared across sinks), then
  // extract results. A sink result is moved out of the memo when no other
  // sink shares its subtree — large results are not copied on the way out.
  for (const auto& sink : program.sinks) {
    GDMS_RETURN_NOT_OK(Evaluate(sink, &memo).status());
  }
  for (size_t i = 0; i < program.sinks.size(); ++i) {
    const PlanNode::Ptr& sink = program.sinks[i];
    const PlanNode* payload = sink->kind == OpKind::kMaterialize
                                  ? sink->children[0].get()
                                  : sink.get();
    bool shared = false;
    for (size_t j = i + 1; j < program.sinks.size(); ++j) {
      const PlanNode* other = program.sinks[j]->kind == OpKind::kMaterialize
                                  ? program.sinks[j]->children[0].get()
                                  : program.sinks[j].get();
      if (other == payload) shared = true;
    }
    gdm::Dataset out;
    auto it = memo.find(payload);
    if (it != memo.end()) {
      if (shared) {
        out = it->second;
      } else {
        out = std::move(it->second);
        memo.erase(it);
      }
    } else {
      // The payload is a source dataset; never move registry entries.
      const gdm::Dataset* src = FindDataset(payload->name);
      if (src == nullptr) {
        return Status::NotFound("unknown dataset: " + payload->name);
      }
      out = *src;
    }
    out.set_name(sink->name);
    outputs.insert_or_assign(sink->name, std::move(out));
  }
  stats_.executor = executor_->stats();
  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return outputs;
}

Result<const gdm::Dataset*> QueryRunner::Evaluate(
    const PlanNode::Ptr& node, std::map<const PlanNode*, gdm::Dataset>* memo) {
  auto it = memo->find(node.get());
  if (it != memo->end()) {
    ++stats_.cache_hits;
    return &it->second;
  }
  if (node->kind == OpKind::kSource) {
    const gdm::Dataset* src = FindDataset(node->name);
    if (src == nullptr) {
      return Status::NotFound("unknown dataset: " + node->name);
    }
    return src;
  }
  // MATERIALIZE is a sink marker with no data semantics: pass the child
  // through so large results are never copied just to be renamed.
  if (node->kind == OpKind::kMaterialize) {
    return Evaluate(node->children[0], memo);
  }
  std::vector<const gdm::Dataset*> inputs;
  inputs.reserve(node->children.size());
  for (const auto& child : node->children) {
    GDMS_ASSIGN_OR_RETURN(const gdm::Dataset* in, Evaluate(child, memo));
    inputs.push_back(in);
  }
  GDMS_ASSIGN_OR_RETURN(gdm::Dataset out, executor_->Execute(*node, inputs));
  ++stats_.operators_evaluated;
  auto [pos, inserted] = memo->emplace(node.get(), std::move(out));
  (void)inserted;
  return &pos->second;
}

}  // namespace gdms::core
