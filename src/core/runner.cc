#include "core/runner.h"

#include <chrono>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gdms::core {

namespace {

/// Restores the tracer's cross-layer parent slot on scope exit, including
/// early error returns.
class ScopedParent {
 public:
  ScopedParent(obs::Tracer* tracer, uint64_t id)
      : tracer_(tracer), prev_(tracer->ExchangeCurrentParent(id)) {}
  ~ScopedParent() { tracer_->ExchangeCurrentParent(prev_); }
  ScopedParent(const ScopedParent&) = delete;
  ScopedParent& operator=(const ScopedParent&) = delete;

 private:
  obs::Tracer* tracer_;
  uint64_t prev_;
};

/// Publishes an account as the process's active query account for the
/// duration of one RunProgram. Teardown clears the slot only when it still
/// holds this account (compare-exchange), so concurrent runners finishing
/// out of order never clobber each other's registration.
class ActiveQueryScope {
 public:
  explicit ActiveQueryScope(std::shared_ptr<obs::QueryAccounting> account)
      : account_(std::move(account)) {
    if (account_ != nullptr) {
      obs::ResourceTracker::Global().SetActiveQuery(account_);
    }
  }
  ~ActiveQueryScope() {
    if (account_ != nullptr) {
      obs::ResourceTracker::Global().ClearActiveQuery(account_);
    }
  }
  ActiveQueryScope(const ActiveQueryScope&) = delete;
  ActiveQueryScope& operator=(const ActiveQueryScope&) = delete;

 private:
  std::shared_ptr<obs::QueryAccounting> account_;
};

obs::Counter* EvictionsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "gdms_mem_evictions_total");
  return c;
}

/// The registry counters whose deltas RunStats attributes to one query.
struct FedCounters {
  obs::Counter* requests;
  obs::Counter* shipped;
  obs::Counter* received;

  static const FedCounters& Get() {
    static FedCounters c{
        obs::MetricsRegistry::Global().GetCounter("gdms_fed_requests_total"),
        obs::MetricsRegistry::Global().GetCounter(
            "gdms_fed_bytes_shipped_total"),
        obs::MetricsRegistry::Global().GetCounter(
            "gdms_fed_bytes_received_total")};
    return c;
  }
};

}  // namespace

QueryRunner::QueryRunner()
    : owned_executor_(std::make_unique<ReferenceExecutor>()),
      executor_(owned_executor_.get()) {}

QueryRunner::QueryRunner(Executor* executor) : executor_(executor) {}

QueryRunner::~QueryRunner() {
  for (const auto& [name, token] : storage_tokens_) {
    obs::ResourceTracker::Global().UnregisterStorage(token);
  }
}

QueryRunner::QueryRunner(QueryRunner&& other) noexcept
    : owned_executor_(std::move(other.owned_executor_)),
      executor_(other.executor_),
      sources_(std::move(other.sources_)),
      storage_tokens_(std::move(other.storage_tokens_)),
      provider_(std::move(other.provider_)),
      shed_at_quiesce_(other.shed_at_quiesce_),
      options_(other.options_),
      stats_(std::move(other.stats_)) {
  other.executor_ = nullptr;
  other.sources_.clear();
  other.storage_tokens_.clear();
}

QueryRunner& QueryRunner::operator=(QueryRunner&& other) noexcept {
  if (this != &other) {
    for (const auto& [name, token] : storage_tokens_) {
      obs::ResourceTracker::Global().UnregisterStorage(token);
    }
    owned_executor_ = std::move(other.owned_executor_);
    executor_ = other.executor_;
    sources_ = std::move(other.sources_);
    storage_tokens_ = std::move(other.storage_tokens_);
    provider_ = std::move(other.provider_);
    shed_at_quiesce_ = other.shed_at_quiesce_;
    options_ = other.options_;
    stats_ = std::move(other.stats_);
    other.executor_ = nullptr;
    other.sources_.clear();
    other.storage_tokens_.clear();
  }
  return *this;
}

void QueryRunner::RegisterDataset(gdm::Dataset dataset) {
  std::string name = dataset.name();
  obs::ResourceTracker& tracker = obs::ResourceTracker::Global();
  // Replacement destroys the old Dataset in place; drop its registration
  // first so the sampler cannot walk a dataset mid-assignment (Unregister
  // synchronizes with the tracker's callback lock).
  auto tok = storage_tokens_.find(name);
  if (tok != storage_tokens_.end()) {
    tracker.UnregisterStorage(tok->second);
    storage_tokens_.erase(tok);
  }
  auto [it, inserted] =
      sources_.insert_or_assign(std::move(name), std::move(dataset));
  (void)inserted;
  gdm::Dataset* ds = &it->second;
  // Row storage is immutable once registered, so its (O(regions)) estimate
  // is computed once here; only the columnar-cache occupancy is live.
  uint64_t row_bytes = ds->EstimateResidentBytes();
  uint64_t token = tracker.RegisterStorage(
      it->first,
      [ds, row_bytes] {
        obs::StorageUsage usage;
        usage.rows_bytes = row_bytes;
        usage.columnar_bytes = ds->ColumnarCacheBytes();
        return usage;
      },
      [ds](uint64_t want_bytes) {
        // Shed callback: drop built columnar caches sample by sample until
        // the request is satisfied. Caches rebuild lazily from the intact
        // row storage, so results are unaffected. Only ever called between
        // queries (ResourceTracker::MaybeShed contract).
        uint64_t freed = 0, evicted = 0;
        for (auto& s : *ds->mutable_samples()) {
          if (freed >= want_bytes) break;
          uint64_t b = s.EvictColumns();
          if (b > 0) {
            freed += b;
            ++evicted;
          }
        }
        if (evicted > 0) EvictionsCounter()->Add(evicted);
        return freed;
      });
  storage_tokens_.emplace(it->first, token);
}

const gdm::Dataset* QueryRunner::FindDataset(const std::string& name) const {
  auto it = sources_.find(name);
  return it == sources_.end() ? nullptr : &it->second;
}

const gdm::Dataset* QueryRunner::ResolveSource(const std::string& name) {
  if (provider_) {
    if (std::shared_ptr<const gdm::Dataset> snapshot = provider_(name)) {
      const gdm::Dataset* raw = snapshot.get();
      pinned_.push_back(std::move(snapshot));
      return raw;
    }
  }
  return FindDataset(name);
}

std::vector<std::string> QueryRunner::DatasetNames() const {
  std::vector<std::string> out;
  out.reserve(sources_.size());
  for (const auto& [name, ds] : sources_) out.push_back(name);
  return out;
}

Result<std::map<std::string, gdm::Dataset>> QueryRunner::Run(
    const std::string& gmql_text) {
  GDMS_ASSIGN_OR_RETURN(Program program, Parser::Parse(gmql_text));
  return RunProgram(std::move(program));
}

Result<std::map<std::string, gdm::Dataset>> QueryRunner::RunProgram(
    Program program) {
  auto start = std::chrono::steady_clock::now();
  // RunStats (counters, memo figures, profile) are rebuilt from zero here
  // and the executor's scheduling counters are re-based, so back-to-back
  // Run() calls never leak telemetry into each other.
  stats_ = RunStats{};
  executor_->ResetStats();
  executor_->set_columnar(options_.columnar);
  const FedCounters& fed = FedCounters::Get();
  uint64_t fed_requests0 = fed.requests->value();
  uint64_t fed_shipped0 = fed.shipped->value();
  uint64_t fed_received0 = fed.received->value();
  obs::Tracer& tracer = obs::Tracer::Global();
  obs::Span query_span = tracer.StartSpan("query", "query", 0);
  if (options_.trace.valid()) {
    stats_.trace_id = options_.trace.id;
    if (query_span.active()) {
      query_span.AddAttr("trace_parent",
                         static_cast<double>(options_.trace.parent_span));
    }
  }
  // Byte accounting: publish a fresh account as the process's active query
  // so engine scratch-buffer charges (ScopedCharge in the flat scheduler)
  // attribute here. Evaluate charges operator outputs through the runner's
  // own account_ member, so concurrent runners keep exact output
  // attribution; only engine scratch charges go through the shared slot
  // (safe — shared_ptr — but per-process, so siblings may cross-attribute).
  obs::ResourceTracker& tracker = obs::ResourceTracker::Global();
  bool accounting = tracker.accounting_enabled();
  std::shared_ptr<obs::QueryAccounting> account =
      accounting ? std::make_shared<obs::QueryAccounting>() : nullptr;
  account_ = account;
  pinned_.clear();
  // Clears the per-run source pins and account on every exit path.
  struct RunCleanup {
    QueryRunner* runner;
    ~RunCleanup() {
      runner->pinned_.clear();
      runner->account_.reset();
    }
  } cleanup{this};
  ActiveQueryScope account_scope(account);
  if (options_.optimize) {
    stats_.optimizer = Optimizer::Optimize(&program);
  }
  if (options_.fusion) {
    stats_.fusion = Optimizer::FusePerPartitionChains(&program);
  }
  std::map<const PlanNode*, gdm::Dataset> memo;
  std::map<std::string, gdm::Dataset> outputs;
  // Evaluate every sink first (the memo may be shared across sinks), then
  // extract results. A sink result is moved out of the memo when no other
  // sink shares its subtree — large results are not copied on the way out.
  for (const auto& sink : program.sinks) {
    GDMS_RETURN_NOT_OK(Evaluate(sink, &memo, query_span.id()).status());
  }
  // Everything in the memo that is not about to be handed out as a sink
  // payload was an intermediate dataset: materialized only to feed the next
  // operator. Count before extraction erases the payload entries.
  {
    std::set<const PlanNode*> payloads;
    for (const auto& sink : program.sinks) {
      payloads.insert(sink->kind == OpKind::kMaterialize
                          ? sink->children[0].get()
                          : sink.get());
    }
    for (const auto& [node, ds] : memo) {
      if (payloads.count(node) == 0) ++stats_.intermediate_datasets;
    }
  }
  for (size_t i = 0; i < program.sinks.size(); ++i) {
    const PlanNode::Ptr& sink = program.sinks[i];
    const PlanNode* payload = sink->kind == OpKind::kMaterialize
                                  ? sink->children[0].get()
                                  : sink.get();
    bool shared = false;
    for (size_t j = i + 1; j < program.sinks.size(); ++j) {
      const PlanNode* other = program.sinks[j]->kind == OpKind::kMaterialize
                                  ? program.sinks[j]->children[0].get()
                                  : program.sinks[j].get();
      if (other == payload) shared = true;
    }
    gdm::Dataset out;
    auto it = memo.find(payload);
    if (it != memo.end()) {
      if (shared) {
        out = it->second;
      } else {
        out = std::move(it->second);
        memo.erase(it);
      }
    } else {
      // The payload is a source dataset; never move registry entries.
      const gdm::Dataset* src = ResolveSource(payload->name);
      if (src == nullptr) {
        return Status::NotFound("unknown dataset: " + payload->name);
      }
      out = *src;
    }
    out.set_name(sink->name);
    outputs.insert_or_assign(sink->name, std::move(out));
  }
  stats_.executor = executor_->stats();
  stats_.fed_requests = fed.requests->value() - fed_requests0;
  stats_.fed_bytes_shipped = fed.shipped->value() - fed_shipped0;
  stats_.fed_bytes_received = fed.received->value() - fed_received0;
  if (accounting) {
    stats_.alloc_bytes = account->alloc_bytes();
    stats_.peak_bytes = account->peak_bytes();
    stats_.op_bytes = account->OperatorStats();
    tracker.NoteQueryPeak(stats_.peak_bytes);
    if (query_span.active()) {
      query_span.AddAttr("peak_bytes",
                         static_cast<double>(stats_.peak_bytes));
      query_span.AddAttr("alloc_bytes",
                         static_cast<double>(stats_.alloc_bytes));
    }
  }
  // The query has quiesced: its intermediates are freed with the memo table
  // below, so this is the safe point for the watermark shedder to drop
  // columnar caches / cold pages if a budget is set. Disabled on serve
  // workers (set_shed_at_quiesce(false)): with sibling queries in flight
  // the process has NOT quiesced, and the session manager sheds when the
  // last in-flight query drains instead.
  if (shed_at_quiesce_) tracker.MaybeShed();
  uint64_t query_span_id = query_span.id();
  query_span.End();
  if (query_span_id != 0) {
    stats_.profile =
        std::make_shared<obs::Profile>(tracer.Collect(query_span_id));
  }
  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  static obs::Counter* queries =
      obs::MetricsRegistry::Global().GetCounter("gdms_runner_queries_total");
  static obs::Histogram* latency = obs::MetricsRegistry::Global().GetHistogram(
      "gdms_runner_query_latency_us");
  static obs::Counter* intermediates =
      obs::MetricsRegistry::Global().GetCounter(
          "gdms_runner_intermediate_datasets_total");
  static obs::Counter* fused_chains =
      obs::MetricsRegistry::Global().GetCounter(
          "gdms_runner_fused_chains_total");
  queries->Add();
  latency->Record(static_cast<uint64_t>(stats_.wall_seconds * 1e6));
  intermediates->Add(stats_.intermediate_datasets);
  fused_chains->Add(stats_.fusion.chains_fused);
  return outputs;
}

Result<const gdm::Dataset*> QueryRunner::Evaluate(
    const PlanNode::Ptr& node, std::map<const PlanNode*, gdm::Dataset>* memo,
    uint64_t parent_span) {
  auto it = memo->find(node.get());
  if (it != memo->end()) {
    ++stats_.cache_hits;
    return &it->second;
  }
  if (node->kind == OpKind::kSource) {
    const gdm::Dataset* src = ResolveSource(node->name);
    if (src == nullptr) {
      return Status::NotFound("unknown dataset: " + node->name);
    }
    // LRU bump for the shedder: this dataset's caches were just used.
    // (Provider-served datasets are touched by the catalog's Resolve.)
    auto tok = storage_tokens_.find(node->name);
    if (tok != storage_tokens_.end()) {
      obs::ResourceTracker::Global().Touch(tok->second);
    }
    return src;
  }
  obs::Tracer& tracer = obs::Tracer::Global();
  // MATERIALIZE is a sink marker with no data semantics: pass the child
  // through so large results are never copied just to be renamed. It still
  // gets a span so the profile tree is rooted at the named sink.
  if (node->kind == OpKind::kMaterialize) {
    obs::Span span = tracer.StartSpan("MATERIALIZE " + node->name, "operator",
                                      parent_span);
    return Evaluate(node->children[0], memo, span.id());
  }
  // A fused node's span names every logical operator in the chain
  // ("MAP+SELECT") and carries fused=true, so EXPLAIN ANALYZE stays truthful
  // about which operators ran even though they share one physical stage.
  std::string op_name = node->kind == OpKind::kFused ? node->FusedChainName()
                                                     : OpKindName(node->kind);
  obs::Span span = tracer.StartSpan(op_name, "operator", parent_span);
  if (node->kind == OpKind::kFused && span.active()) {
    span.AddAttr("fused", 1);
    span.AddAttr("fused_stages",
                 static_cast<double>(node->fused_stages.size()));
  }
  std::vector<const gdm::Dataset*> inputs;
  inputs.reserve(node->children.size());
  for (const auto& child : node->children) {
    GDMS_ASSIGN_OR_RETURN(const gdm::Dataset* in,
                          Evaluate(child, memo, span.id()));
    inputs.push_back(in);
  }
  // Publish this operator's span as the cross-layer parent: engine stage
  // spans and federation hops emitted inside Execute nest under it.
  ExecutorStats before = span.active() ? executor_->stats() : ExecutorStats{};
  // Name the operator for byte attribution: scratch buffers the engine
  // charges during Execute and the output charge below land on it.
  obs::QueryAccounting* account = account_.get();
  if (account != nullptr) account->SetCurrentOp(op_name);
  gdm::Dataset out;
  {
    ScopedParent scope(&tracer, span.id());
    GDMS_ASSIGN_OR_RETURN(out, executor_->Execute(*node, inputs));
  }
  if (account != nullptr) {
    uint64_t out_bytes = out.EstimateResidentBytes();
    account->Charge(out_bytes);
    if (span.active()) {
      span.AddAttr("out_bytes", static_cast<double>(out_bytes));
    }
  }
  if (span.active()) {
    ExecutorStats after = executor_->stats();
    span.AddAttr("out_samples", static_cast<double>(out.num_samples()));
    span.AddAttr("out_regions", static_cast<double>(out.TotalRegions()));
    if (after.tasks > before.tasks) {
      span.AddAttr("tasks", static_cast<double>(after.tasks - before.tasks));
    }
    if (after.partitions > before.partitions) {
      span.AddAttr("partitions",
                   static_cast<double>(after.partitions - before.partitions));
    }
    if (after.shuffle_bytes > before.shuffle_bytes) {
      span.AddAttr("shuffle_bytes", static_cast<double>(after.shuffle_bytes -
                                                        before.shuffle_bytes));
    }
  }
  ++stats_.operators_evaluated;
  auto [pos, inserted] = memo->emplace(node.get(), std::move(out));
  (void)inserted;
  return &pos->second;
}

obs::QueryLogEntry MakeQueryLogEntry(const std::string& query,
                                     const RunStats& stats,
                                     const std::string& error) {
  obs::QueryLogEntry entry;
  entry.query = query;
  entry.ok = error.empty();
  entry.error = error;
  entry.wall_ms = stats.wall_seconds * 1e3;
  entry.operators = stats.operators_evaluated;
  entry.cache_hits = stats.cache_hits;
  entry.intermediate_datasets = stats.intermediate_datasets;
  entry.fused_chains = stats.fusion.chains_fused;
  entry.tasks = stats.executor.tasks;
  entry.partitions = stats.executor.partitions;
  entry.shuffle_bytes = stats.executor.shuffle_bytes;
  entry.stage_barriers = stats.executor.stage_barriers;
  entry.fed_requests = stats.fed_requests;
  entry.fed_bytes_shipped = stats.fed_bytes_shipped;
  entry.fed_bytes_received = stats.fed_bytes_received;
  entry.alloc_bytes = stats.alloc_bytes;
  entry.peak_bytes = stats.peak_bytes;
  entry.profile = stats.profile;
  if (stats.trace_id.valid()) entry.trace_id = stats.trace_id.ToHex();
  return entry;
}

}  // namespace gdms::core
