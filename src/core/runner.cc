#include "core/runner.h"

#include <chrono>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gdms::core {

namespace {

/// Restores the tracer's cross-layer parent slot on scope exit, including
/// early error returns.
class ScopedParent {
 public:
  ScopedParent(obs::Tracer* tracer, uint64_t id)
      : tracer_(tracer), prev_(tracer->ExchangeCurrentParent(id)) {}
  ~ScopedParent() { tracer_->ExchangeCurrentParent(prev_); }
  ScopedParent(const ScopedParent&) = delete;
  ScopedParent& operator=(const ScopedParent&) = delete;

 private:
  obs::Tracer* tracer_;
  uint64_t prev_;
};

/// The registry counters whose deltas RunStats attributes to one query.
struct FedCounters {
  obs::Counter* requests;
  obs::Counter* shipped;
  obs::Counter* received;

  static const FedCounters& Get() {
    static FedCounters c{
        obs::MetricsRegistry::Global().GetCounter("gdms_fed_requests_total"),
        obs::MetricsRegistry::Global().GetCounter(
            "gdms_fed_bytes_shipped_total"),
        obs::MetricsRegistry::Global().GetCounter(
            "gdms_fed_bytes_received_total")};
    return c;
  }
};

}  // namespace

QueryRunner::QueryRunner()
    : owned_executor_(std::make_unique<ReferenceExecutor>()),
      executor_(owned_executor_.get()) {}

QueryRunner::QueryRunner(Executor* executor) : executor_(executor) {}

void QueryRunner::RegisterDataset(gdm::Dataset dataset) {
  std::string name = dataset.name();
  sources_.insert_or_assign(std::move(name), std::move(dataset));
}

const gdm::Dataset* QueryRunner::FindDataset(const std::string& name) const {
  auto it = sources_.find(name);
  return it == sources_.end() ? nullptr : &it->second;
}

std::vector<std::string> QueryRunner::DatasetNames() const {
  std::vector<std::string> out;
  out.reserve(sources_.size());
  for (const auto& [name, ds] : sources_) out.push_back(name);
  return out;
}

Result<std::map<std::string, gdm::Dataset>> QueryRunner::Run(
    const std::string& gmql_text) {
  GDMS_ASSIGN_OR_RETURN(Program program, Parser::Parse(gmql_text));
  return RunProgram(std::move(program));
}

Result<std::map<std::string, gdm::Dataset>> QueryRunner::RunProgram(
    Program program) {
  auto start = std::chrono::steady_clock::now();
  // RunStats (counters, memo figures, profile) are rebuilt from zero here
  // and the executor's scheduling counters are re-based, so back-to-back
  // Run() calls never leak telemetry into each other.
  stats_ = RunStats{};
  executor_->ResetStats();
  executor_->set_columnar(options_.columnar);
  const FedCounters& fed = FedCounters::Get();
  uint64_t fed_requests0 = fed.requests->value();
  uint64_t fed_shipped0 = fed.shipped->value();
  uint64_t fed_received0 = fed.received->value();
  obs::Tracer& tracer = obs::Tracer::Global();
  obs::Span query_span = tracer.StartSpan("query", "query", 0);
  if (options_.optimize) {
    stats_.optimizer = Optimizer::Optimize(&program);
  }
  if (options_.fusion) {
    stats_.fusion = Optimizer::FusePerPartitionChains(&program);
  }
  std::map<const PlanNode*, gdm::Dataset> memo;
  std::map<std::string, gdm::Dataset> outputs;
  // Evaluate every sink first (the memo may be shared across sinks), then
  // extract results. A sink result is moved out of the memo when no other
  // sink shares its subtree — large results are not copied on the way out.
  for (const auto& sink : program.sinks) {
    GDMS_RETURN_NOT_OK(Evaluate(sink, &memo, query_span.id()).status());
  }
  // Everything in the memo that is not about to be handed out as a sink
  // payload was an intermediate dataset: materialized only to feed the next
  // operator. Count before extraction erases the payload entries.
  {
    std::set<const PlanNode*> payloads;
    for (const auto& sink : program.sinks) {
      payloads.insert(sink->kind == OpKind::kMaterialize
                          ? sink->children[0].get()
                          : sink.get());
    }
    for (const auto& [node, ds] : memo) {
      if (payloads.count(node) == 0) ++stats_.intermediate_datasets;
    }
  }
  for (size_t i = 0; i < program.sinks.size(); ++i) {
    const PlanNode::Ptr& sink = program.sinks[i];
    const PlanNode* payload = sink->kind == OpKind::kMaterialize
                                  ? sink->children[0].get()
                                  : sink.get();
    bool shared = false;
    for (size_t j = i + 1; j < program.sinks.size(); ++j) {
      const PlanNode* other = program.sinks[j]->kind == OpKind::kMaterialize
                                  ? program.sinks[j]->children[0].get()
                                  : program.sinks[j].get();
      if (other == payload) shared = true;
    }
    gdm::Dataset out;
    auto it = memo.find(payload);
    if (it != memo.end()) {
      if (shared) {
        out = it->second;
      } else {
        out = std::move(it->second);
        memo.erase(it);
      }
    } else {
      // The payload is a source dataset; never move registry entries.
      const gdm::Dataset* src = FindDataset(payload->name);
      if (src == nullptr) {
        return Status::NotFound("unknown dataset: " + payload->name);
      }
      out = *src;
    }
    out.set_name(sink->name);
    outputs.insert_or_assign(sink->name, std::move(out));
  }
  stats_.executor = executor_->stats();
  stats_.fed_requests = fed.requests->value() - fed_requests0;
  stats_.fed_bytes_shipped = fed.shipped->value() - fed_shipped0;
  stats_.fed_bytes_received = fed.received->value() - fed_received0;
  uint64_t query_span_id = query_span.id();
  query_span.End();
  if (query_span_id != 0) {
    stats_.profile =
        std::make_shared<obs::Profile>(tracer.Collect(query_span_id));
  }
  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  static obs::Counter* queries =
      obs::MetricsRegistry::Global().GetCounter("gdms_runner_queries_total");
  static obs::Histogram* latency = obs::MetricsRegistry::Global().GetHistogram(
      "gdms_runner_query_latency_us");
  static obs::Counter* intermediates =
      obs::MetricsRegistry::Global().GetCounter(
          "gdms_runner_intermediate_datasets_total");
  static obs::Counter* fused_chains =
      obs::MetricsRegistry::Global().GetCounter(
          "gdms_runner_fused_chains_total");
  queries->Add();
  latency->Record(static_cast<uint64_t>(stats_.wall_seconds * 1e6));
  intermediates->Add(stats_.intermediate_datasets);
  fused_chains->Add(stats_.fusion.chains_fused);
  return outputs;
}

Result<const gdm::Dataset*> QueryRunner::Evaluate(
    const PlanNode::Ptr& node, std::map<const PlanNode*, gdm::Dataset>* memo,
    uint64_t parent_span) {
  auto it = memo->find(node.get());
  if (it != memo->end()) {
    ++stats_.cache_hits;
    return &it->second;
  }
  if (node->kind == OpKind::kSource) {
    const gdm::Dataset* src = FindDataset(node->name);
    if (src == nullptr) {
      return Status::NotFound("unknown dataset: " + node->name);
    }
    return src;
  }
  obs::Tracer& tracer = obs::Tracer::Global();
  // MATERIALIZE is a sink marker with no data semantics: pass the child
  // through so large results are never copied just to be renamed. It still
  // gets a span so the profile tree is rooted at the named sink.
  if (node->kind == OpKind::kMaterialize) {
    obs::Span span = tracer.StartSpan("MATERIALIZE " + node->name, "operator",
                                      parent_span);
    return Evaluate(node->children[0], memo, span.id());
  }
  // A fused node's span names every logical operator in the chain
  // ("MAP+SELECT") and carries fused=true, so EXPLAIN ANALYZE stays truthful
  // about which operators ran even though they share one physical stage.
  obs::Span span = tracer.StartSpan(node->kind == OpKind::kFused
                                        ? node->FusedChainName()
                                        : OpKindName(node->kind),
                                    "operator", parent_span);
  if (node->kind == OpKind::kFused && span.active()) {
    span.AddAttr("fused", 1);
    span.AddAttr("fused_stages",
                 static_cast<double>(node->fused_stages.size()));
  }
  std::vector<const gdm::Dataset*> inputs;
  inputs.reserve(node->children.size());
  for (const auto& child : node->children) {
    GDMS_ASSIGN_OR_RETURN(const gdm::Dataset* in,
                          Evaluate(child, memo, span.id()));
    inputs.push_back(in);
  }
  // Publish this operator's span as the cross-layer parent: engine stage
  // spans and federation hops emitted inside Execute nest under it.
  ExecutorStats before = span.active() ? executor_->stats() : ExecutorStats{};
  gdm::Dataset out;
  {
    ScopedParent scope(&tracer, span.id());
    GDMS_ASSIGN_OR_RETURN(out, executor_->Execute(*node, inputs));
  }
  if (span.active()) {
    ExecutorStats after = executor_->stats();
    span.AddAttr("out_samples", static_cast<double>(out.num_samples()));
    span.AddAttr("out_regions", static_cast<double>(out.TotalRegions()));
    if (after.tasks > before.tasks) {
      span.AddAttr("tasks", static_cast<double>(after.tasks - before.tasks));
    }
    if (after.partitions > before.partitions) {
      span.AddAttr("partitions",
                   static_cast<double>(after.partitions - before.partitions));
    }
    if (after.shuffle_bytes > before.shuffle_bytes) {
      span.AddAttr("shuffle_bytes", static_cast<double>(after.shuffle_bytes -
                                                        before.shuffle_bytes));
    }
  }
  ++stats_.operators_evaluated;
  auto [pos, inserted] = memo->emplace(node.get(), std::move(out));
  (void)inserted;
  return &pos->second;
}

obs::QueryLogEntry MakeQueryLogEntry(const std::string& query,
                                     const RunStats& stats,
                                     const std::string& error) {
  obs::QueryLogEntry entry;
  entry.query = query;
  entry.ok = error.empty();
  entry.error = error;
  entry.wall_ms = stats.wall_seconds * 1e3;
  entry.operators = stats.operators_evaluated;
  entry.cache_hits = stats.cache_hits;
  entry.intermediate_datasets = stats.intermediate_datasets;
  entry.fused_chains = stats.fusion.chains_fused;
  entry.tasks = stats.executor.tasks;
  entry.partitions = stats.executor.partitions;
  entry.shuffle_bytes = stats.executor.shuffle_bytes;
  entry.stage_barriers = stats.executor.stage_barriers;
  entry.fed_requests = stats.fed_requests;
  entry.fed_bytes_shipped = stats.fed_bytes_shipped;
  entry.fed_bytes_received = stats.fed_bytes_received;
  entry.profile = stats.profile;
  return entry;
}

}  // namespace gdms::core
