#ifndef GDMS_CORE_PREDICATES_H_
#define GDMS_CORE_PREDICATES_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "gdm/dataset.h"
#include "gdm/metadata.h"
#include "gdm/region.h"
#include "gdm/schema.h"

namespace gdms::core {

/// Comparison operators shared by metadata and region predicates.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

/// \brief Predicate over sample metadata.
///
/// GMQL SELECT's first argument. A comparison `attr op value` holds if ANY
/// value of `attr` satisfies it (metadata attributes are multi-valued);
/// values compare numerically when both sides parse as numbers, otherwise
/// as strings. Composable with AND / OR / NOT, plus an existence test.
class MetaPredicate {
 public:
  virtual ~MetaPredicate() = default;
  virtual bool Eval(const gdm::Metadata& meta) const = 0;
  /// Canonical rendering, used for plan hashing / CSE.
  virtual std::string ToString() const = 0;

  using Ptr = std::shared_ptr<const MetaPredicate>;

  static Ptr True();
  static Ptr Compare(std::string attr, CmpOp op, std::string value);
  static Ptr Exists(std::string attr);
  static Ptr And(Ptr a, Ptr b);
  static Ptr Or(Ptr a, Ptr b);
  static Ptr Not(Ptr a);
};

/// \brief Predicate over a single region.
///
/// GMQL SELECT's region argument. Operands are the fixed attributes (chr,
/// left, right, strand) or variable schema attributes; the right-hand side
/// is a constant. NULL operands make any comparison false.
class RegionPredicate {
 public:
  virtual ~RegionPredicate() = default;

  /// Binds schema attribute names to indexes; call once per dataset before
  /// Eval. Errors if a referenced attribute is absent.
  virtual Status Bind(const gdm::RegionSchema& schema) = 0;
  virtual bool Eval(const gdm::GenomicRegion& region) const = 0;
  virtual std::string ToString() const = 0;

  using Ptr = std::shared_ptr<RegionPredicate>;

  static Ptr True();
  /// attr is "chr", "left", "right", "strand" or a schema attribute.
  static Ptr Compare(std::string attr, CmpOp op, gdm::Value value);
  static Ptr And(Ptr a, Ptr b);
  static Ptr Or(Ptr a, Ptr b);
  static Ptr Not(Ptr a);

  /// Deep copy (predicates carry mutable binding state, so plan nodes clone
  /// before binding).
  virtual Ptr Clone() const = 0;
};

/// \brief Arithmetic expression over a region, for PROJECT's new attributes.
///
/// Grammar: constants, attribute references (fixed: left, right, plus
/// derived len = right-left; variable: any schema attr), binary + - * /.
class RegionExpr {
 public:
  virtual ~RegionExpr() = default;
  virtual Status Bind(const gdm::RegionSchema& schema) = 0;
  virtual gdm::Value Eval(const gdm::GenomicRegion& region) const = 0;
  virtual std::string ToString() const = 0;
  /// Static result type (numeric expressions yield DOUBLE, attribute
  /// references keep their schema type, len/left/right yield INT).
  virtual gdm::AttrType OutputType(const gdm::RegionSchema& schema) const = 0;

  using Ptr = std::shared_ptr<RegionExpr>;

  static Ptr Constant(gdm::Value v);
  static Ptr Attr(std::string name);
  static Ptr Binary(char op, Ptr lhs, Ptr rhs);

  virtual Ptr Clone() const = 0;
};

}  // namespace gdms::core

#endif  // GDMS_CORE_PREDICATES_H_
