#include "serve/plan_cache.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "obs/metrics.h"

namespace gdms::serve {

namespace {

/// The gdms_serve_plan_* counters, resolved once.
struct PlanMetrics {
  obs::Counter* hits;
  obs::Counter* rebinds;
  obs::Counter* misses;

  static const PlanMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static PlanMetrics m{reg.GetCounter("gdms_serve_plan_hits_total"),
                         reg.GetCounter("gdms_serve_plan_rebinds_total"),
                         reg.GetCounter("gdms_serve_plan_misses_total")};
    return m;
  }
};

/// A '-' starts a negative number only after a token that cannot end an
/// expression (mirrors the parser lexer's NumberContext so normalized
/// shapes re-lex identically).
bool NumberContext(const std::vector<std::string>& tokens,
                   const std::vector<bool>& is_literal) {
  if (tokens.empty()) return true;
  if (is_literal.back()) return false;  // after a number/string: binary minus
  const std::string& prev = tokens.back();
  static const char* kContexts[] = {"(", ",", "==", "!=", "<",
                                    "<=", ">", ">=", ";", ":"};
  for (const char* sym : kContexts) {
    if (prev == sym) return true;
  }
  return false;
}

std::string JoinBinding(const std::vector<std::string>& literals) {
  std::string key;
  for (const std::string& lit : literals) {
    key += lit;
    key += '\x1f';
  }
  return key;
}

/// Splices a binding's literals into a shape's token template and joins
/// with single spaces — the statement text prepared for that binding.
std::string SpliceBinding(const std::vector<std::string>& tokens,
                          const std::vector<std::string>& literals) {
  std::string text;
  size_t next_literal = 0;
  for (const std::string& tok : tokens) {
    if (!text.empty()) text += ' ';
    if (tok == "?" && next_literal < literals.size()) {
      text += literals[next_literal++];
    } else {
      text += tok;
    }
  }
  return text;
}

}  // namespace

Result<NormalizedQuery> NormalizeGmql(const std::string& text) {
  NormalizedQuery out;
  std::vector<bool> is_literal;
  size_t pos = 0, line = 1;
  while (pos < text.size()) {
    char c = text[pos];
    if (c == '\n') {
      ++line;
      ++pos;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (pos < text.size() && text[pos] != '\n') ++pos;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '_' || text[pos] == '.')) {
        ++pos;
      }
      out.tokens.push_back(text.substr(start, pos - start));
      is_literal.push_back(false);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos + 1])) &&
         NumberContext(out.tokens, is_literal))) {
      size_t start = pos;
      if (c == '-') ++pos;
      bool saw_dot = false;
      while (pos < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[pos])) ||
              (!saw_dot && text[pos] == '.' && pos + 1 < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos + 1]))))) {
        if (text[pos] == '.') saw_dot = true;
        ++pos;
      }
      out.literals.push_back(text.substr(start, pos - start));
      out.tokens.push_back("?");
      is_literal.push_back(true);
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      size_t start = pos;
      ++pos;
      while (pos < text.size() && text[pos] != quote) ++pos;
      if (pos >= text.size()) {
        return Status::ParseError("unterminated string at line " +
                                  std::to_string(line));
      }
      ++pos;  // closing quote
      out.literals.push_back(text.substr(start, pos - start));
      out.tokens.push_back("?");
      is_literal.push_back(true);
      continue;
    }
    static const char* kTwo[] = {"==", "!=", "<=", ">="};
    bool matched = false;
    for (const char* sym : kTwo) {
      if (text.compare(pos, 2, sym) == 0) {
        out.tokens.push_back(sym);
        is_literal.push_back(false);
        pos += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kOne = "();,=<>+-*/:.";
    if (kOne.find(c) != std::string::npos) {
      out.tokens.push_back(std::string(1, c));
      is_literal.push_back(false);
      ++pos;
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at line " + std::to_string(line));
  }
  for (const std::string& tok : out.tokens) {
    if (!out.key.empty()) out.key += ' ';
    out.key += tok;
  }
  return out;
}

PlanCache::PlanCache(size_t max_shapes, size_t max_bindings_per_shape)
    : max_shapes_(max_shapes == 0 ? 1 : max_shapes),
      max_bindings_per_shape_(
          max_bindings_per_shape == 0 ? 1 : max_bindings_per_shape) {}

Result<PlanCache::Lookup> PlanCache::GetOrPrepare(const std::string& gmql,
                                                  const PrepareFn& prepare) {
  GDMS_ASSIGN_OR_RETURN(NormalizedQuery nq, NormalizeGmql(gmql));
  std::string binding_key = JoinBinding(nq.literals);
  Outcome outcome = Outcome::kMiss;
  std::string prepare_text = gmql;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = shapes_.find(nq.key);
    if (it != shapes_.end()) {
      Shape& shape = it->second;
      shape.last_touch = ++touch_clock_;
      ++shape.uses;
      auto bit = shape.bindings.find(binding_key);
      if (bit != shape.bindings.end()) {
        ++hits_;
        PlanMetrics::Get().hits->Add();
        shape.binding_touch[binding_key] = touch_clock_;
        return Lookup{bit->second, Outcome::kHit};
      }
      // Known shape, unseen literals: re-bind them into the cached token
      // template and prepare this one variant.
      outcome = Outcome::kRebind;
      prepare_text = SpliceBinding(shape.tokens, nq.literals);
    }
  }
  GDMS_ASSIGN_OR_RETURN(Prepared prepared, prepare(prepare_text));
  auto shared = std::make_shared<const Prepared>(std::move(prepared));
  std::lock_guard<std::mutex> lk(mu_);
  Shape& shape = shapes_[nq.key];
  if (shape.tokens.empty()) shape.tokens = std::move(nq.tokens);
  shape.last_touch = ++touch_clock_;
  auto [bit, inserted] = shape.bindings.emplace(binding_key, shared);
  shape.binding_touch[binding_key] = touch_clock_;
  if (outcome == Outcome::kRebind) {
    ++rebinds_;
    PlanMetrics::Get().rebinds->Add();
  } else {
    ++misses_;
    PlanMetrics::Get().misses->Add();
  }
  // Bound the per-shape binding set (LRU) and the shape set itself.
  if (shape.bindings.size() > max_bindings_per_shape_) {
    std::string coldest;
    uint64_t coldest_touch = UINT64_MAX;
    for (const auto& [key, touch] : shape.binding_touch) {
      if (key != binding_key && touch < coldest_touch) {
        coldest_touch = touch;
        coldest = key;
      }
    }
    shape.bindings.erase(coldest);
    shape.binding_touch.erase(coldest);
  }
  EvictIfNeededLocked();
  // A raced prepare of the same binding: the first insert won and `bit`
  // points at the winner; both callers share it.
  return Lookup{bit->second, outcome};
}

void PlanCache::EvictIfNeededLocked() {
  while (shapes_.size() > max_shapes_) {
    auto coldest = shapes_.end();
    for (auto it = shapes_.begin(); it != shapes_.end(); ++it) {
      if (coldest == shapes_.end() ||
          it->second.last_touch < coldest->second.last_touch) {
        coldest = it;
      }
    }
    shapes_.erase(coldest);
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  shapes_.clear();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s;
  s.hits = hits_;
  s.rebinds = rebinds_;
  s.misses = misses_;
  s.shapes = shapes_.size();
  for (const auto& [key, shape] : shapes_) s.bindings += shape.bindings.size();
  return s;
}

std::string PlanCache::RenderSummary(size_t max_shapes) const {
  Stats s = stats();
  char head[160];
  std::snprintf(head, sizeof(head),
                "plan cache  shapes %zu  bindings %zu  hit %llu  rebind %llu"
                "  miss %llu  hit-rate %.1f%%\n",
                s.shapes, s.bindings, static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.rebinds),
                static_cast<unsigned long long>(s.misses),
                100.0 * s.hit_rate());
  std::string out = head;
  std::vector<std::pair<uint64_t, std::string>> rows;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [key, shape] : shapes_) {
      std::string label = key.size() > 72 ? key.substr(0, 69) + "..." : key;
      char buf[160];
      std::snprintf(buf, sizeof(buf), "  %6llu uses  %2zu bindings  %s\n",
                    static_cast<unsigned long long>(shape.uses),
                    shape.bindings.size(), label.c_str());
      rows.emplace_back(shape.uses, buf);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (size_t i = 0; i < rows.size() && i < max_shapes; ++i) {
    out += rows[i].second;
  }
  return out;
}

}  // namespace gdms::serve
