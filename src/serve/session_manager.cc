#include "serve/session_manager.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <utility>

#include "engine/parallel_executor.h"
#include "obs/metrics.h"
#include "obs/resource.h"

namespace gdms::serve {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct ServeMetrics {
  obs::Gauge* active;
  obs::Gauge* queue_depth;
  obs::Gauge* workers;
  obs::Counter* admitted;
  obs::Counter* rejected;
  obs::Counter* completed;
  obs::Counter* failed;
  obs::Counter* deadline_exceeded;
  obs::Histogram* latency_us;
  obs::Histogram* queue_wait_us;
  obs::Histogram* exec_us;

  static ServeMetrics& Get() {
    static ServeMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      ServeMetrics out;
      out.active = reg.GetGauge("gdms_serve_active_sessions");
      out.queue_depth = reg.GetGauge("gdms_serve_queue_depth");
      out.workers = reg.GetGauge("gdms_serve_workers");
      out.admitted = reg.GetCounter("gdms_serve_admitted_total");
      out.rejected = reg.GetCounter("gdms_serve_rejected_total");
      out.completed = reg.GetCounter("gdms_serve_completed_total");
      out.failed = reg.GetCounter("gdms_serve_failed_total");
      out.deadline_exceeded =
          reg.GetCounter("gdms_serve_deadline_exceeded_total");
      out.latency_us = reg.GetHistogram("gdms_serve_latency_us");
      out.queue_wait_us = reg.GetHistogram("gdms_serve_queue_wait_us");
      out.exec_us = reg.GetHistogram("gdms_serve_exec_us");
      return out;
    }();
    return m;
  }
};

/// Whitespace is structural in the span list/wire formats, and serve span
/// names derived from operator names ("MATERIALIZE OUT") can carry spaces.
std::string SpanName(std::string name) {
  for (char& c : name) {
    if (c == ' ' || c == '\t' || c == '\n') c = '_';
  }
  return name;
}

/// Collects the kSource names a program reads, in first-use order. Walks
/// children and fused stages so fused chains don't hide their inputs.
void CollectSources(const core::PlanNode::Ptr& node,
                    std::vector<std::string>* out) {
  if (node == nullptr) return;
  if (node->kind == core::OpKind::kSource) {
    if (std::find(out->begin(), out->end(), node->name) == out->end()) {
      out->push_back(node->name);
    }
  }
  for (const core::PlanNode::Ptr& child : node->children) {
    CollectSources(child, out);
  }
  for (const core::PlanNode::Ptr& stage : node->fused_stages) {
    CollectSources(stage, out);
  }
}

}  // namespace

SessionManager::SessionManager(ServeCatalog* catalog, ServeOptions options)
    : catalog_(catalog),
      options_([&] {
        ServeOptions o = options;
        o.workers = std::max<size_t>(1, o.workers);
        o.queue_limit = std::max<size_t>(1, o.queue_limit);
        return o;
      }()),
      plan_cache_(options.plan_cache_shapes, options.plan_bindings_per_shape),
      result_cache_(options.result_cache_bytes),
      pool_(std::max<size_t>(1, options.workers)) {
  for (size_t i = 0; i < options_.workers; ++i) {
    auto ctx = std::make_unique<WorkerContext>();
    ctx->id = i;
    if (options_.engine_threads > 0) {
      engine::EngineOptions eopts;
      eopts.threads = options_.engine_threads;
      eopts.columnar = options_.exec.columnar;
      ctx->executor = std::make_unique<engine::ParallelExecutor>(eopts);
    } else {
      ctx->executor = std::make_unique<core::ReferenceExecutor>();
    }
    ctx->runner = std::make_unique<core::QueryRunner>(ctx->executor.get());
    // Cached programs are already optimized and fused; the worker must run
    // them verbatim so the shared plan nodes are never mutated.
    core::ExecOptions worker_exec = options_.exec;
    worker_exec.optimize = false;
    worker_exec.fusion = false;
    ctx->runner->set_exec_options(worker_exec);
    ctx->runner->set_shed_at_quiesce(false);
    free_contexts_.push_back(ctx.get());
    contexts_.push_back(std::move(ctx));
  }
  ServeMetrics::Get().workers->Set(static_cast<int64_t>(options_.workers));
  catalog_->set_on_publish(
      [this](const std::string& name) { result_cache_.InvalidateDataset(name); });
}

SessionManager::~SessionManager() {
  Drain();
  catalog_->set_on_publish(nullptr);
}

Result<PlanCache::Prepared> SessionManager::Prepare(
    const std::string& text) const {
  GDMS_ASSIGN_OR_RETURN(core::Program program, core::Parser::Parse(text));
  if (options_.exec.optimize) core::Optimizer::Optimize(&program);
  if (options_.exec.fusion) core::Optimizer::FusePerPartitionChains(&program);
  PlanCache::Prepared prepared;
  std::string plan_key;
  for (const core::PlanNode::Ptr& sink : program.sinks) {
    CollectSources(sink, &prepared.sources);
    plan_key += sink->Signature();
    plan_key += '\n';
  }
  prepared.plan_key = std::move(plan_key);
  prepared.program = std::make_shared<const core::Program>(std::move(program));
  return prepared;
}

Result<uint64_t> SessionManager::Submit(std::string gmql, ResponseFn done,
                                        double deadline_ms) {
  ServeMetrics& m = ServeMetrics::Get();
  // Admission: reserve a queue slot or fast-fail. fetch_add + undo keeps the
  // check race-free without a lock on the admission path.
  size_t depth = queued_.fetch_add(1, std::memory_order_acq_rel);
  if (depth >= options_.queue_limit) {
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    m.rejected->Add();
    return Status::Unavailable("serve queue full (" +
                               std::to_string(options_.queue_limit) +
                               " queries pending)");
  }
  m.queue_depth->Set(static_cast<int64_t>(depth + 1));
  admitted_.fetch_add(1, std::memory_order_relaxed);
  m.admitted->Add();

  auto job = std::make_shared<Job>();
  job->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  job->gmql = std::move(gmql);
  job->done = std::move(done);
  job->submitted = Clock::now();
  // Trace identity is minted at admission, from the query id, so traced
  // runs replay with identical ids and the queue wait is already inside
  // the trace window.
  job->trace.id = obs::MintTraceId(job->id, 0x73657276ull);
  double effective = deadline_ms < 0 ? options_.default_deadline_ms : deadline_ms;
  if (effective > 0) {
    job->has_deadline = true;
    job->deadline =
        job->submitted + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(effective));
  }
  uint64_t id = job->id;
  pool_.Submit([this, job] { RunJob(job.get()); });
  return id;
}

void SessionManager::RunJob(Job* job) {
  ServeMetrics& m = ServeMetrics::Get();
  Clock::time_point dequeued = Clock::now();
  size_t remaining = queued_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  m.queue_depth->Set(static_cast<int64_t>(remaining));

  ServeResponse resp;
  resp.id = job->id;
  resp.queue_ms = MsSince(job->submitted, dequeued);
  m.queue_wait_us->Record(static_cast<uint64_t>(resp.queue_ms * 1000.0));

  // Serve-path trace assembly: spans in wall microseconds since admission,
  // stitched into one DistTrace when the job finishes (or is shed). The
  // same builder runs for every admitted query; retention is tail-based.
  std::vector<obs::DistSpan> tspans;
  uint64_t tnext = 1;
  auto temit = [&](std::string name, std::string segment, uint64_t start_us,
                   uint64_t duration_us, uint64_t parent) {
    obs::DistSpan s;
    s.id = tnext++;
    s.parent = parent;
    s.name = std::move(name);
    s.segment = std::move(segment);
    s.start_us = start_us;
    s.duration_us = duration_us;
    tspans.push_back(std::move(s));
    return tspans.back().id;
  };
  const uint64_t queue_us = static_cast<uint64_t>(resp.queue_ms * 1000.0);
  const uint64_t troot = temit("serve:query", "", 0, 0, 0);
  tspans.back().attrs.emplace_back("query", static_cast<double>(job->id));
  temit("serve:queue", "admit.queue", 0, queue_us, troot);
  // Closes the root at total_ms, stitches, records critical-path metrics,
  // and retains the exemplar when the tail-based criteria fire.
  auto finish_trace = [&](const char* forced_reason) {
    // Spans with id == troot are at a fixed index, but find defensively.
    uint64_t total_us = static_cast<uint64_t>(resp.total_ms * 1000.0);
    for (obs::DistSpan& s : tspans) {
      if (s.id == troot) s.duration_us = std::max(s.duration_us, total_us);
    }
    std::string reason = forced_reason;
    if (reason.empty() && !resp.status.ok()) reason = "error";
    if (reason.empty() && options_.trace_slow_ms > 0 &&
        resp.total_ms >= options_.trace_slow_ms) {
      reason = "slow";
    }
    obs::DistTrace trace = obs::StitchTrace(job->trace.id, std::move(tspans));
    trace.reason = reason;
    auto shared = std::make_shared<const obs::DistTrace>(std::move(trace));
    obs::RecordCriticalPathMetrics(obs::CriticalPath(*shared));
    if (!shared->reason.empty()) obs::TraceExemplars::Global().Keep(shared);
    resp.trace = shared;
  };

  // Expired while queued: shed without executing.
  if (job->has_deadline && dequeued >= job->deadline) {
    resp.status = Status::DeadlineExceeded(
        "deadline expired after " + std::to_string(resp.queue_ms) +
        " ms in queue");
    resp.total_ms = resp.queue_ms;
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    failed_.fetch_add(1, std::memory_order_relaxed);
    m.deadline_exceeded->Add();
    m.failed->Add();
    m.latency_us->Record(static_cast<uint64_t>(resp.total_ms * 1000.0));
    // Even a query that never executed leaves a (minimal) trace: the root
    // plus the queue-wait span, so shed storms are attributable.
    finish_trace("shed");
    job->done(resp);
    TryQuiesceShed();
    return;
  }

  active_.fetch_add(1, std::memory_order_acq_rel);
  m.active->Set(static_cast<int64_t>(active_.load(std::memory_order_relaxed)));
  {
    // Shared side of the execution gate: while held, the quiesce shedder
    // cannot evict storage under this query.
    std::shared_lock<std::shared_mutex> gate(exec_gate_);
    WorkerContext* ctx = AcquireContext();
    resp.worker = ctx->id;

    Clock::time_point plan0 = Clock::now();
    Result<PlanCache::Lookup> lookup_or = plan_cache_.GetOrPrepare(
        job->gmql, [this](const std::string& text) { return Prepare(text); });
    Clock::time_point plan1 = Clock::now();
    const uint64_t plan_off =
        static_cast<uint64_t>(MsSince(job->submitted, plan0) * 1000.0);
    const uint64_t plan_dur =
        static_cast<uint64_t>(MsSince(plan0, plan1) * 1000.0);
    if (!lookup_or.ok()) {
      temit("serve:plan:error", "plan.prepare", plan_off, plan_dur, troot);
      resp.status = lookup_or.status();
    } else {
      const PlanCache::Lookup& lookup = lookup_or.value();
      const PlanCache::Prepared& prepared = *lookup.prepared;
      switch (lookup.outcome) {
        case PlanCache::Outcome::kHit: resp.plan_cache = "hit"; break;
        case PlanCache::Outcome::kRebind: resp.plan_cache = "rebind"; break;
        case PlanCache::Outcome::kMiss: resp.plan_cache = "miss"; break;
      }
      temit(std::string("serve:plan:") + resp.plan_cache, "plan.prepare",
            plan_off, plan_dur, troot);

      // Pin every source snapshot up front; the version key is built from
      // exactly these pins, so a cached entry always matches the bytes the
      // query would read.
      std::map<std::string, ServeCatalog::Snapshot> pins;
      std::string key = prepared.plan_key;
      key += '|';
      for (const std::string& name : prepared.sources) {
        ServeCatalog::Snapshot snap = catalog_->Resolve(name);
        key += name;
        key += '@';
        key += std::to_string(snap.version);
        key += ';';
        pins.emplace(name, std::move(snap));
      }

      bool cache_results = options_.result_cache_bytes > 0;
      if (cache_results) {
        Clock::time_point rc0 = Clock::now();
        if (ResultCache::Results cached = result_cache_.Get(key)) {
          resp.results = std::move(cached);
          resp.result_cache_hit = true;
          resp.status = Status::OK();
          temit("serve:result_cache", "result.cache",
                static_cast<uint64_t>(MsSince(job->submitted, rc0) * 1000.0),
                static_cast<uint64_t>(MsSince(rc0, Clock::now()) * 1000.0),
                troot);
        }
      }
      if (resp.results == nullptr) {
        ctx->runner->set_source_provider(
            [&pins, this](const std::string& name)
                -> std::shared_ptr<const gdm::Dataset> {
              auto it = pins.find(name);
              if (it != pins.end()) return it->second.data;
              return catalog_->Resolve(name).data;
            });
        Clock::time_point t0 = Clock::now();
        const uint64_t exec_off =
            static_cast<uint64_t>(MsSince(job->submitted, t0) * 1000.0);
        const uint64_t texec = temit("serve:exec", "engine", exec_off, 0, troot);
        // Thread the trace into the runner for exactly this program: the
        // engine's wall profile (when the tracer is on) gets rebased under
        // the exec span below, and RunStats carries the trace id into the
        // query log.
        const core::ExecOptions worker_opts = ctx->runner->exec_options();
        core::ExecOptions traced_opts = worker_opts;
        traced_opts.trace = job->trace;
        traced_opts.trace.parent_span = texec;
        ctx->runner->set_exec_options(traced_opts);
        Result<std::map<std::string, gdm::Dataset>> run =
            ctx->runner->RunProgram(*prepared.program);
        ctx->runner->set_exec_options(worker_opts);
        resp.exec_ms = MsSince(t0, Clock::now());
        m.exec_us->Record(static_cast<uint64_t>(resp.exec_ms * 1000.0));
        resp.stats = ctx->runner->last_stats();
        ctx->runner->set_source_provider(nullptr);
        // temit never erases, so span id N sits at index N - 1.
        tspans[texec - 1].duration_us =
            static_cast<uint64_t>(resp.exec_ms * 1000.0);
        // Rebase the engine's operator spans (wall profile) under the exec
        // span. Parents start before their children, so a start-ordered
        // sweep resolves every parent link in one pass; bounded so a huge
        // plan can't bloat the exemplar ring.
        if (resp.stats.profile != nullptr &&
            !resp.stats.profile->roots().empty()) {
          const obs::Profile& prof = *resp.stats.profile;
          int64_t anchor = prof.nodes()[prof.roots()[0]].rec->start_ns;
          std::vector<const obs::SpanRecord*> ops;
          for (const obs::SpanRecord& rec : prof.spans()) {
            if (rec.category == "operator") ops.push_back(&rec);
          }
          std::sort(ops.begin(), ops.end(),
                    [](const obs::SpanRecord* a, const obs::SpanRecord* b) {
                      return a->start_ns < b->start_ns;
                    });
          if (ops.size() > 64) ops.resize(64);
          std::map<std::pair<uint64_t, uint64_t>, uint64_t> remap;
          for (const obs::SpanRecord* rec : ops) {
            uint64_t parent = texec;
            auto it = remap.find({rec->origin, rec->parent});
            if (it != remap.end()) parent = it->second;
            int64_t off_ns = std::max<int64_t>(0, rec->start_ns - anchor);
            uint64_t id = temit(
                SpanName("op:" + rec->name), "",
                exec_off + static_cast<uint64_t>(off_ns / 1000),
                static_cast<uint64_t>(std::max<int64_t>(0, rec->duration_ns) /
                                      1000),
                parent);
            remap[{rec->origin, rec->id}] = id;
          }
        }
        if (!run.ok()) {
          resp.status = run.status();
        } else {
          resp.results =
              std::make_shared<const std::map<std::string, gdm::Dataset>>(
                  std::move(run).value());
          if (cache_results) {
            result_cache_.Put(key, prepared.sources, resp.results);
          }
        }
      }
    }
    ReleaseContext(ctx);
  }
  active_.fetch_sub(1, std::memory_order_acq_rel);
  m.active->Set(static_cast<int64_t>(active_.load(std::memory_order_relaxed)));

  resp.total_ms = MsSince(job->submitted, Clock::now());
  m.latency_us->Record(static_cast<uint64_t>(resp.total_ms * 1000.0));
  finish_trace("");
  if (resp.status.ok()) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    m.completed->Add();
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
    m.failed->Add();
  }
  job->done(resp);
  TryQuiesceShed();
}

void SessionManager::TryQuiesceShed() {
  obs::ResourceTracker& tracker = obs::ResourceTracker::Global();
  if (tracker.budget_bytes() == 0) return;
  if (queued_.load(std::memory_order_acquire) != 0) return;
  // Exclusive side of the gate: acquires only when no job is executing. A
  // failed try-lock just defers to whichever job finishes next.
  std::unique_lock<std::shared_mutex> gate(exec_gate_, std::try_to_lock);
  if (!gate.owns_lock()) return;
  tracker.MaybeShed();
}

SessionManager::WorkerContext* SessionManager::AcquireContext() {
  std::lock_guard<std::mutex> lk(ctx_mu_);
  // Never empty: the pool has exactly `workers` threads, so at most
  // `workers` jobs run concurrently.
  WorkerContext* ctx = free_contexts_.back();
  free_contexts_.pop_back();
  return ctx;
}

void SessionManager::ReleaseContext(WorkerContext* ctx) {
  std::lock_guard<std::mutex> lk(ctx_mu_);
  free_contexts_.push_back(ctx);
}

ServeResponse SessionManager::Execute(const std::string& gmql,
                                      double deadline_ms) {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  ServeResponse out;
  Result<uint64_t> id = Submit(
      gmql,
      [&](const ServeResponse& resp) {
        std::lock_guard<std::mutex> lk(mu);
        out = resp;
        ready = true;
        cv.notify_one();
      },
      deadline_ms);
  if (!id.ok()) {
    out.status = id.status();
    return out;
  }
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return ready; });
  return out;
}

void SessionManager::Drain() { pool_.WaitIdle(); }

SessionManager::Stats SessionManager::stats() const {
  Stats s;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.active = active_.load(std::memory_order_relaxed);
  s.queued = queued_.load(std::memory_order_relaxed);
  return s;
}

std::string SessionManager::RenderSessions() const {
  ServeMetrics& m = ServeMetrics::Get();
  Stats s = stats();
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "serve: %zu workers  active=%zu queued=%zu (limit %zu)\n",
                options_.workers, s.active, s.queued, options_.queue_limit);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  admitted=%llu rejected=%llu completed=%llu failed=%llu "
                "deadline_exceeded=%llu\n",
                static_cast<unsigned long long>(s.admitted),
                static_cast<unsigned long long>(s.rejected),
                static_cast<unsigned long long>(s.completed),
                static_cast<unsigned long long>(s.failed),
                static_cast<unsigned long long>(s.deadline_exceeded));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  latency p50=%.2fms p95=%.2fms p99=%.2fms  queue p95=%.2fms\n",
                m.latency_us->Quantile(0.50) / 1000.0,
                m.latency_us->Quantile(0.95) / 1000.0,
                m.latency_us->Quantile(0.99) / 1000.0,
                m.queue_wait_us->Quantile(0.95) / 1000.0);
  out += buf;
  return out;
}

}  // namespace gdms::serve
