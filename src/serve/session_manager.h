#ifndef GDMS_SERVE_SESSION_MANAGER_H_
#define GDMS_SERVE_SESSION_MANAGER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/runner.h"
#include "obs/dtrace.h"
#include "serve/plan_cache.h"
#include "serve/result_cache.h"
#include "serve/serve_catalog.h"

namespace gdms::serve {

/// Session manager knobs (the shell's --workers / --queue-limit /
/// --deadline-ms flags).
struct ServeOptions {
  /// Concurrent query sessions (worker threads in the admission pool).
  size_t workers = 4;
  /// Admitted-but-not-finished queries beyond which Submit fast-fails with
  /// Unavailable (backpressure instead of unbounded queueing).
  size_t queue_limit = 64;
  /// Default per-query deadline, applied to queue wait: a query still
  /// queued when its deadline passes is answered DeadlineExceeded without
  /// executing (load shedding). 0 = none. Submit can override per query.
  double default_deadline_ms = 0;
  /// Intra-query engine threads per worker (each worker owns a private
  /// parallel executor). 0 = sequential reference executor. Keep small:
  /// inter-query concurrency comes from `workers`.
  size_t engine_threads = 1;
  /// Byte cap of the result cache; 0 disables result caching entirely.
  uint64_t result_cache_bytes = 256ull << 20;
  size_t plan_cache_shapes = 256;
  size_t plan_bindings_per_shape = 64;
  /// Optimization applied once at plan-prepare time; cached programs are
  /// executed as-is (workers run with optimize/fusion off — both already
  /// happened — so shared plan nodes are never mutated).
  core::ExecOptions exec;
  /// Tail-based trace retention threshold: a traced query whose total time
  /// reaches this many milliseconds is kept in the exemplar ring
  /// ("slow"); errors and queue-sheds are always kept. <= 0 disables the
  /// slow criterion (errors/sheds are still retained).
  double trace_slow_ms = 250.0;
};

/// Everything one finished (or refused) query reports back.
struct ServeResponse {
  uint64_t id = 0;
  Status status;
  /// Materialized outputs by name; shared with the result cache (zero-copy
  /// hits), alive as long as the caller holds it. Null on error.
  ResultCache::Results results;
  /// Engine stats of the actual run; zeros on a result-cache hit.
  core::RunStats stats;
  double queue_ms = 0;
  double exec_ms = 0;
  double total_ms = 0;
  /// "hit" | "rebind" | "miss" ("" when the query failed normalization).
  const char* plan_cache = "";
  bool result_cache_hit = false;
  uint64_t worker = 0;
  /// The query's serve-path trace: admission queue, plan cache, result
  /// cache / engine spans in wall microseconds since admission, with the
  /// critical-path extractable via obs::CriticalPath. Present for every
  /// admitted query — including shed ones, whose minimal trace is the
  /// root plus the queue-wait span. Null only for rejected submissions.
  std::shared_ptr<const obs::DistTrace> trace;
};

/// \brief The server core: admission control + N concurrent sessions over
/// the shared catalog.
///
/// Flow per query: admission (bounded queue, fast Unavailable on overflow)
/// -> deadline check at dequeue (expired-in-queue queries are shed, never
/// executed) -> plan cache (normalize, hit/rebind/prepare) -> result cache
/// keyed on (plan signature, pinned dataset versions) -> execute on the
/// worker's private runner/executor against the pinned catalog snapshots
/// -> result cache fill -> response callback (exactly one per admitted
/// query; rejected queries get their status from Submit instead).
///
/// Shedding: worker runners never shed mid-flight; when the pool quiesces
/// (no job holds the execution gate) the manager runs one
/// ResourceTracker::MaybeShed() pass, so PR 7's budget covers the serve
/// path — including cached results — without racing readers.
class SessionManager {
 public:
  using ResponseFn = std::function<void(const ServeResponse&)>;

  SessionManager(ServeCatalog* catalog, ServeOptions options = {});
  ~SessionManager();
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Admits `gmql` and returns its query id, or Unavailable when the queue
  /// is full (fast, never blocks on capacity). `done` runs exactly once on
  /// a pool thread with the response. `deadline_ms` < 0 uses the default;
  /// 0 means no deadline.
  Result<uint64_t> Submit(std::string gmql, ResponseFn done,
                          double deadline_ms = -1);

  /// Synchronous convenience: Submit + wait. A rejected query returns the
  /// rejection status in the response (id 0).
  ServeResponse Execute(const std::string& gmql, double deadline_ms = -1);

  /// Blocks until every admitted query has responded.
  void Drain();

  struct Stats {
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;  ///< responded ok
    uint64_t failed = 0;     ///< responded with an error
    uint64_t deadline_exceeded = 0;
    size_t active = 0;  ///< executing right now
    size_t queued = 0;  ///< admitted, not yet executing
  };
  Stats stats() const;

  PlanCache& plan_cache() { return plan_cache_; }
  ResultCache& result_cache() { return result_cache_; }
  ServeCatalog& catalog() { return *catalog_; }
  const ServeOptions& options() const { return options_; }

  /// Human-readable status (the `.sessions` command): pool occupancy,
  /// admit/reject/latency figures.
  std::string RenderSessions() const;

 private:
  /// Per-worker execution context: a private executor + runner so RunStats,
  /// executor counters and source pins never interleave across sessions.
  struct WorkerContext {
    uint64_t id = 0;
    std::unique_ptr<core::Executor> executor;
    std::unique_ptr<core::QueryRunner> runner;
  };

  struct Job {
    uint64_t id = 0;
    std::string gmql;
    ResponseFn done;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    /// Minted at admission; every layer the query crosses hangs its spans
    /// off this one identity.
    obs::TraceContext trace;
  };

  void RunJob(Job* job);
  WorkerContext* AcquireContext();
  void ReleaseContext(WorkerContext* ctx);
  Result<PlanCache::Prepared> Prepare(const std::string& text) const;
  void TryQuiesceShed();

  ServeCatalog* catalog_;
  const ServeOptions options_;
  PlanCache plan_cache_;
  ResultCache result_cache_;

  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<size_t> queued_{0};
  std::atomic<size_t> active_{0};

  std::mutex ctx_mu_;
  std::vector<std::unique_ptr<WorkerContext>> contexts_;
  std::vector<WorkerContext*> free_contexts_;

  /// Execution gate: jobs hold it shared while touching datasets/caches;
  /// the quiesce shedder try-locks it exclusively, so shedding can never
  /// race an in-flight reader.
  std::shared_mutex exec_gate_;

  /// Last member: destroyed first, so pool threads stop before the
  /// contexts/caches they use go away.
  gdms::ThreadPool pool_;
};

}  // namespace gdms::serve

#endif  // GDMS_SERVE_SESSION_MANAGER_H_
