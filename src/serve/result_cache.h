#ifndef GDMS_SERVE_RESULT_CACHE_H_
#define GDMS_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gdm/dataset.h"

namespace gdms::serve {

/// \brief Cache of materialized query results, keyed on
/// (normalized plan, dataset versions).
///
/// The key concatenates the plan's canonical signature with the
/// name@version of every source dataset the plan read, so a dataset bump
/// makes every result computed from the old snapshot unreachable; Publish
/// additionally invalidates by name (on_publish hook) so stale entries
/// free their bytes immediately instead of waiting for LRU pressure.
///
/// Values are `shared_ptr<const map<name, Dataset>>`: a hit hands the
/// caller a reference into the cache with zero copies, and eviction at any
/// moment is safe — in-flight readers keep their snapshot alive.
///
/// Byte-bounded (LRU) and registered with obs::ResourceTracker under the
/// label "result_cache": cached result bytes show up in the storage gauges
/// as reclaimable, and PR 7's budget shedder evicts them LRU-first like any
/// other cache.
class ResultCache {
 public:
  using Results = std::shared_ptr<const std::map<std::string, gdm::Dataset>>;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;  ///< entries dropped by dataset bumps
    uint64_t evictions = 0;      ///< entries dropped by LRU/byte pressure
    size_t entries = 0;
    uint64_t bytes = 0;
  };

  /// `max_bytes` caps resident result bytes (0 = unbounded; the tracker
  /// budget still sheds).
  explicit ResultCache(uint64_t max_bytes = 256ull << 20);
  ~ResultCache();
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Cached results for `key`, or nullptr (counts hit/miss).
  Results Get(const std::string& key);

  /// Inserts `value` (its resident bytes are estimated here); evicts LRU
  /// entries beyond the byte cap. `sources` are the dataset names the plan
  /// read — the invalidation index.
  void Put(const std::string& key, const std::vector<std::string>& sources,
           Results value);

  /// Drops every entry computed from dataset `name` (any version).
  void InvalidateDataset(const std::string& name);

  void Clear();

  /// Evicts LRU entries until `want_bytes` are freed (or empty); returns
  /// bytes freed. The ResourceTracker shed callback.
  uint64_t Shed(uint64_t want_bytes);

  Stats stats() const;
  uint64_t bytes() const;

  /// Human-readable summary (the `.cache` command).
  std::string RenderSummary() const;

 private:
  struct Entry {
    Results value;
    std::vector<std::string> sources;
    uint64_t bytes = 0;
    uint64_t last_touch = 0;
  };

  uint64_t ShedLocked(uint64_t want_bytes, bool count_as_eviction);

  const uint64_t max_bytes_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  uint64_t bytes_ = 0;
  uint64_t touch_clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t invalidations_ = 0;
  uint64_t evictions_ = 0;
  uint64_t tracker_token_ = 0;
};

}  // namespace gdms::serve

#endif  // GDMS_SERVE_RESULT_CACHE_H_
