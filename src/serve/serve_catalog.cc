#include "serve/serve_catalog.h"

#include "obs/metrics.h"
#include "obs/resource.h"

namespace gdms::serve {

namespace {

obs::Counter* EvictionsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("gdms_mem_evictions_total");
  return c;
}

}  // namespace

ServeCatalog::~ServeCatalog() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, entry] : entries_) {
    obs::ResourceTracker::Global().UnregisterStorage(entry.tracker_token);
  }
}

uint64_t ServeCatalog::Publish(gdm::Dataset dataset) {
  std::string name = dataset.name();
  auto snapshot = std::make_shared<const gdm::Dataset>(std::move(dataset));
  obs::ResourceTracker& tracker = obs::ResourceTracker::Global();
  // Row storage is immutable once published; only the columnar-cache
  // occupancy is live. The usage/shed callbacks capture the shared snapshot,
  // so they stay valid however long the tracker keeps them.
  uint64_t row_bytes = snapshot->EstimateResidentBytes();
  uint64_t token = tracker.RegisterStorage(
      name,
      [snapshot, row_bytes] {
        obs::StorageUsage usage;
        usage.rows_bytes = row_bytes;
        usage.columnar_bytes = snapshot->ColumnarCacheBytes();
        return usage;
      },
      [snapshot](uint64_t want_bytes) {
        // Drop built columnar caches sample by sample until satisfied; they
        // rebuild lazily from the intact rows. Only called at quiesce
        // (ResourceTracker::MaybeShed contract, enforced by the session
        // manager under concurrency).
        uint64_t freed = 0, evicted = 0;
        for (const auto& s : snapshot->samples()) {
          if (freed >= want_bytes) break;
          uint64_t b = s.EvictColumns();
          if (b > 0) {
            freed += b;
            ++evicted;
          }
        }
        if (evicted > 0) EvictionsCounter()->Add(evicted);
        return freed;
      });
  uint64_t version = 0;
  uint64_t old_token = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    Entry& entry = entries_[name];
    old_token = entry.tracker_token;
    entry.data = std::move(snapshot);
    entry.version += 1;
    entry.tracker_token = token;
    version = entry.version;
  }
  if (old_token != 0) tracker.UnregisterStorage(old_token);
  std::function<void(const std::string&)> hook;
  {
    std::lock_guard<std::mutex> lk(mu_);
    hook = on_publish_;
  }
  if (hook) hook(name);
  return version;
}

ServeCatalog::Snapshot ServeCatalog::Resolve(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return {};
  Snapshot snap;
  snap.data = it->second.data;
  snap.version = it->second.version;
  // LRU bump for the shedder: this dataset's caches are about to be used.
  obs::ResourceTracker::Global().Touch(it->second.tracker_token);
  return snap;
}

uint64_t ServeCatalog::Version(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.version;
}

std::vector<std::string> ServeCatalog::Names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

size_t ServeCatalog::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

void ServeCatalog::set_on_publish(std::function<void(const std::string&)> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  on_publish_ = std::move(fn);
}

}  // namespace gdms::serve
