#include "serve/result_cache.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/resource.h"

namespace gdms::serve {

namespace {

struct ResultMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* invalidations;
  obs::Counter* evictions;

  static const ResultMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static ResultMetrics m{
        reg.GetCounter("gdms_serve_result_hits_total"),
        reg.GetCounter("gdms_serve_result_misses_total"),
        reg.GetCounter("gdms_serve_result_invalidations_total"),
        reg.GetCounter("gdms_serve_result_evictions_total")};
    return m;
  }
};

uint64_t EstimateResultBytes(const ResultCache::Results& value) {
  uint64_t bytes = 0;
  if (value != nullptr) {
    for (const auto& [name, ds] : *value) bytes += ds.EstimateResidentBytes();
  }
  return bytes;
}

}  // namespace

ResultCache::ResultCache(uint64_t max_bytes) : max_bytes_(max_bytes) {
  // Cached results are reclaimable overlay bytes like columnar caches:
  // report them to the tracker so the budget shedder covers them.
  tracker_token_ = obs::ResourceTracker::Global().RegisterStorage(
      "result_cache",
      [this] {
        obs::StorageUsage usage;
        usage.columnar_bytes = bytes();
        return usage;
      },
      [this](uint64_t want_bytes) { return Shed(want_bytes); });
}

ResultCache::~ResultCache() {
  obs::ResourceTracker::Global().UnregisterStorage(tracker_token_);
}

ResultCache::Results ResultCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    ResultMetrics::Get().misses->Add();
    return nullptr;
  }
  ++hits_;
  ResultMetrics::Get().hits->Add();
  it->second.last_touch = ++touch_clock_;
  return it->second.value;
}

void ResultCache::Put(const std::string& key,
                      const std::vector<std::string>& sources, Results value) {
  uint64_t bytes = EstimateResultBytes(value);
  std::lock_guard<std::mutex> lk(mu_);
  Entry& entry = entries_[key];
  bytes_ -= entry.bytes;  // replacement: drop the old figure first
  entry.value = std::move(value);
  entry.sources = sources;
  entry.bytes = bytes;
  entry.last_touch = ++touch_clock_;
  bytes_ += bytes;
  if (max_bytes_ > 0 && bytes_ > max_bytes_) {
    ShedLocked(bytes_ - max_bytes_, /*count_as_eviction=*/true);
  }
}

void ResultCache::InvalidateDataset(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    const std::vector<std::string>& sources = it->second.sources;
    if (std::find(sources.begin(), sources.end(), name) != sources.end()) {
      bytes_ -= it->second.bytes;
      it = entries_.erase(it);
      ++invalidations_;
      ResultMetrics::Get().invalidations->Add();
    } else {
      ++it;
    }
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  entries_.clear();
  bytes_ = 0;
}

uint64_t ResultCache::Shed(uint64_t want_bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  return ShedLocked(want_bytes, /*count_as_eviction=*/true);
}

uint64_t ResultCache::ShedLocked(uint64_t want_bytes,
                                 bool count_as_eviction) {
  uint64_t freed = 0;
  while (freed < want_bytes && !entries_.empty()) {
    auto coldest = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (coldest == entries_.end() ||
          it->second.last_touch < coldest->second.last_touch) {
        coldest = it;
      }
    }
    freed += coldest->second.bytes;
    bytes_ -= coldest->second.bytes;
    entries_.erase(coldest);
    if (count_as_eviction) {
      ++evictions_;
      ResultMetrics::Get().evictions->Add();
    }
  }
  return freed;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.invalidations = invalidations_;
  s.evictions = evictions_;
  s.entries = entries_.size();
  s.bytes = bytes_;
  return s;
}

uint64_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return bytes_;
}

std::string ResultCache::RenderSummary() const {
  Stats s = stats();
  char buf[224];
  std::snprintf(
      buf, sizeof(buf),
      "result cache  entries %zu  %.1f KB  hit %llu  miss %llu"
      "  invalidated %llu  evicted %llu\n",
      s.entries, static_cast<double>(s.bytes) / 1024.0,
      static_cast<unsigned long long>(s.hits),
      static_cast<unsigned long long>(s.misses),
      static_cast<unsigned long long>(s.invalidations),
      static_cast<unsigned long long>(s.evictions));
  return buf;
}

}  // namespace gdms::serve
