#ifndef GDMS_SERVE_SERVE_CATALOG_H_
#define GDMS_SERVE_SERVE_CATALOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gdm/dataset.h"

namespace gdms::serve {

/// \brief Copy-on-write, versioned dataset catalog shared by concurrent
/// sessions.
///
/// Each dataset lives behind a `shared_ptr<const Dataset>`: queries pin the
/// snapshot they started with, so a writer republishing a dataset never
/// mutates storage a reader is traversing — the old snapshot stays alive
/// until its last in-flight query drops it. Every Publish bumps the
/// dataset's version; (name, version) pairs key the result cache, so a bump
/// makes every cached result that read the old snapshot unreachable.
///
/// Residency is registered with obs::ResourceTracker per dataset (same
/// gauges + columnar shed callback as QueryRunner::RegisterDataset), so the
/// memory budget covers served datasets too.
class ServeCatalog {
 public:
  /// One dataset snapshot + its version, resolved atomically (the pair a
  /// query pins before computing its result-cache key).
  struct Snapshot {
    std::shared_ptr<const gdm::Dataset> data;
    uint64_t version = 0;
  };

  ServeCatalog() = default;
  ~ServeCatalog();
  ServeCatalog(const ServeCatalog&) = delete;
  ServeCatalog& operator=(const ServeCatalog&) = delete;

  /// Inserts or replaces `dataset` under its name and bumps its version
  /// (first publish = version 1). Returns the new version. Fires the
  /// on_publish hook (result-cache invalidation) after the swap.
  uint64_t Publish(gdm::Dataset dataset);

  /// The current snapshot, or {nullptr, 0} when absent.
  Snapshot Resolve(const std::string& name) const;

  /// Current version; 0 when absent.
  uint64_t Version(const std::string& name) const;

  std::vector<std::string> Names() const;
  size_t size() const;

  /// Called after every Publish with the dataset's name, outside the
  /// catalog lock. The session manager hooks result-cache invalidation
  /// here. Pass nullptr to clear.
  void set_on_publish(std::function<void(const std::string&)> fn);

 private:
  struct Entry {
    std::shared_ptr<const gdm::Dataset> data;
    uint64_t version = 0;
    uint64_t tracker_token = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::function<void(const std::string&)> on_publish_;
};

}  // namespace gdms::serve

#endif  // GDMS_SERVE_SERVE_CATALOG_H_
