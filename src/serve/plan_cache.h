#ifndef GDMS_SERVE_PLAN_CACHE_H_
#define GDMS_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/plan.h"

namespace gdms::serve {

/// Lexical normalization of one GMQL query: the token stream with every
/// number and quoted-string literal replaced by a placeholder. Two queries
/// that differ only in literal values normalize to the same `key` — the
/// prepared-statement shape the plan cache is keyed on — while the extracted
/// `literals` (source spellings, in order) form the binding.
struct NormalizedQuery {
  /// Canonical shape: tokens joined by single spaces, literals as '?'.
  std::string key;
  /// Token sequence of the shape; literal slots hold "?". Splicing a
  /// binding's literals back into these slots reconstructs a parseable
  /// statement for that binding.
  std::vector<std::string> tokens;
  /// Literal spellings in source order (numbers verbatim, strings with
  /// their quotes), i.e. the binding of this query.
  std::vector<std::string> literals;
};

/// Normalizes with the parser's own lexical rules (comments stripped,
/// whitespace collapsed, negative-number context). Returns an error only on
/// malformed input the parser would reject too (unterminated string, stray
/// character).
Result<NormalizedQuery> NormalizeGmql(const std::string& gmql);

/// \brief Shared cache of prepared (parsed + optimized + fused) plans,
/// keyed on the normalized query shape.
///
/// Layout: shape -> binding -> Prepared. A lookup whose shape AND binding
/// are cached is a **hit**: the immutable, already-optimized Program is
/// shared directly — zero parse or optimize work. A cached shape with an
/// unseen binding is a **rebind**: the new literals are spliced into the
/// shape's token template and prepared once, then cached under that
/// binding. An unseen shape is a **miss**.
///
/// Cached Programs are safe to execute concurrently without copying their
/// nodes: plan nodes are read-only during evaluation (operators clone
/// predicates before binding), and the session manager runs them with
/// optimization/fusion disabled since both were applied at prepare time.
///
/// Thread-safe. Preparation runs outside the cache lock; when two sessions
/// race to prepare the same (shape, binding), the first insert wins and
/// both share the winner's plan.
class PlanCache {
 public:
  /// One prepared plan variant plus what the result cache needs to key and
  /// invalidate results computed from it.
  struct Prepared {
    /// Optimized + fused program; immutable from here on.
    std::shared_ptr<const core::Program> program;
    /// Names of the source datasets the plan reads (result-cache versioning).
    std::vector<std::string> sources;
    /// Canonical plan identity: the concatenated sink signatures.
    std::string plan_key;
  };

  enum class Outcome { kHit, kRebind, kMiss };

  struct Lookup {
    std::shared_ptr<const Prepared> prepared;
    Outcome outcome = Outcome::kMiss;
  };

  /// Parses + optimizes `text` into a Prepared (supplied by the session
  /// manager so the cache stays agnostic of ExecOptions).
  using PrepareFn = std::function<Result<Prepared>(const std::string& text)>;

  struct Stats {
    uint64_t hits = 0;
    uint64_t rebinds = 0;
    uint64_t misses = 0;
    size_t shapes = 0;
    size_t bindings = 0;
    /// hits / (hits + rebinds + misses); a rebind is NOT a hit — the 90%
    /// warm-hit-rate gate counts shared-plan reuse only.
    double hit_rate() const {
      uint64_t total = hits + rebinds + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  explicit PlanCache(size_t max_shapes = 256,
                     size_t max_bindings_per_shape = 64);

  /// The cache's one entry point: normalize, then hit / rebind / prepare.
  /// Parse failures are returned and never cached.
  Result<Lookup> GetOrPrepare(const std::string& gmql,
                              const PrepareFn& prepare);

  void Clear();
  Stats stats() const;

  /// Human-readable shape table (the `.cache` command), hottest first.
  std::string RenderSummary(size_t max_shapes = 10) const;

 private:
  struct Shape {
    std::vector<std::string> tokens;
    /// binding key (literals joined by '\x1f') -> prepared plan.
    std::map<std::string, std::shared_ptr<const Prepared>> bindings;
    std::map<std::string, uint64_t> binding_touch;
    uint64_t last_touch = 0;
    uint64_t uses = 0;
  };

  void EvictIfNeededLocked();

  const size_t max_shapes_;
  const size_t max_bindings_per_shape_;
  mutable std::mutex mu_;
  std::map<std::string, Shape> shapes_;
  uint64_t touch_clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t rebinds_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace gdms::serve

#endif  // GDMS_SERVE_PLAN_CACHE_H_
