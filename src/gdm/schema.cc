#include "gdm/schema.h"

namespace gdms::gdm {

const std::vector<std::string>& RegionSchema::FixedAttributeNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "id", "chr", "left", "right", "strand"};
  return *kNames;
}

std::optional<size_t> RegionSchema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return i;
  }
  return std::nullopt;
}

Status RegionSchema::AddAttr(const std::string& name, AttrType type) {
  if (Contains(name)) {
    return Status::AlreadyExists("schema already has attribute: " + name);
  }
  for (const auto& fixed : FixedAttributeNames()) {
    if (fixed == name) {
      return Status::InvalidArgument("attribute name is reserved (fixed): " +
                                     name);
    }
  }
  attrs_.push_back({name, type});
  return Status::OK();
}

RegionSchema RegionSchema::Merge(const RegionSchema& left,
                                 const RegionSchema& right,
                                 const std::string& right_prefix) {
  RegionSchema out = left;
  for (const auto& attr : right.attrs_) {
    auto idx = out.IndexOf(attr.name);
    if (idx.has_value()) {
      if (out.attrs_[*idx].type == attr.type) continue;  // shared attribute
      out.attrs_.push_back({right_prefix + attr.name, attr.type});
    } else {
      out.attrs_.push_back(attr);
    }
  }
  return out;
}

RegionSchema RegionSchema::Concat(const RegionSchema& left,
                                  const RegionSchema& right,
                                  const std::string& right_prefix) {
  RegionSchema out = left;
  for (const auto& attr : right.attrs_) {
    std::string name = attr.name;
    while (out.Contains(name)) name = right_prefix + name;
    out.attrs_.push_back({name, attr.type});
  }
  return out;
}

std::string RegionSchema::ToString() const {
  std::string out;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attrs_[i].name;
    out += ":";
    out += AttrTypeName(attrs_[i].type);
  }
  return out;
}

}  // namespace gdms::gdm
