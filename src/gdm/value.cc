#include "gdm/value.h"

#include <cctype>
#include <cstdio>

#include "common/string_util.h"

namespace gdms::gdm {

const char* AttrTypeName(AttrType t) {
  switch (t) {
    case AttrType::kNull:
      return "NULL";
    case AttrType::kInt:
      return "INT";
    case AttrType::kDouble:
      return "DOUBLE";
    case AttrType::kString:
      return "STRING";
    case AttrType::kBool:
      return "BOOL";
  }
  return "UNKNOWN";
}

Result<AttrType> ParseAttrType(const std::string& name) {
  std::string up;
  up.reserve(name.size());
  for (char c : name) {
    up.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  if (up == "INT" || up == "INTEGER" || up == "LONG") return AttrType::kInt;
  if (up == "DOUBLE" || up == "FLOAT" || up == "REAL") return AttrType::kDouble;
  if (up == "STRING" || up == "CHAR" || up == "TEXT") return AttrType::kString;
  if (up == "BOOL" || up == "BOOLEAN") return AttrType::kBool;
  if (up == "NULL") return AttrType::kNull;
  return Status::ParseError("unknown attribute type: " + name);
}

AttrType Value::type() const {
  if (is_null()) return AttrType::kNull;
  if (is_int()) return AttrType::kInt;
  if (is_double()) return AttrType::kDouble;
  if (is_string()) return AttrType::kString;
  return AttrType::kBool;
}

Result<double> Value::ToNumeric() const {
  if (is_int()) return static_cast<double>(AsInt());
  if (is_double()) return AsDouble();
  if (is_bool()) return AsBool() ? 1.0 : 0.0;
  return Status::TypeError("value is not numeric: " + ToString());
}

std::string Value::ToString() const {
  if (is_null()) return ".";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
    return buf;
  }
  if (is_bool()) return AsBool() ? "true" : "false";
  return AsString();
}

Result<Value> Value::Parse(const std::string& text, AttrType t) {
  if (text == ".") return Value::Null();
  switch (t) {
    case AttrType::kNull:
      return Value::Null();
    case AttrType::kInt: {
      GDMS_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      return Value(v);
    }
    case AttrType::kDouble: {
      GDMS_ASSIGN_OR_RETURN(double v, ParseDouble(text));
      return Value(v);
    }
    case AttrType::kString:
      return Value(text);
    case AttrType::kBool: {
      std::string low = ToLower(text);
      if (low == "true" || low == "1") return Value(true);
      if (low == "false" || low == "0") return Value(false);
      return Status::ParseError("invalid bool: " + text);
    }
  }
  return Status::Internal("unreachable AttrType");
}

int Value::Compare(const Value& other) const {
  // NULLs first.
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  // Cross-numeric comparison.
  auto numeric = [](const Value& v) {
    return v.is_int() || v.is_double() || v.is_bool();
  };
  if (numeric(*this) && numeric(other)) {
    double a = ToNumeric().ValueOrDie();
    double b = other.ToNumeric().ValueOrDie();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (is_string() && other.is_string()) {
    const std::string& a = AsString();
    const std::string& b = other.AsString();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  // Mixed string/numeric: order by type tag for a stable total order.
  int ta = static_cast<int>(type());
  int tb = static_cast<int>(other.type());
  return ta < tb ? -1 : (ta > tb ? 1 : 0);
}

}  // namespace gdms::gdm
