#ifndef GDMS_GDM_DATASET_H_
#define GDMS_GDM_DATASET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "gdm/chrom_index.h"
#include "gdm/metadata.h"
#include "gdm/region.h"
#include "gdm/region_columns.h"
#include "gdm/schema.h"

namespace gdms::gdm {

/// Sample identifier. Source samples get small ids; derived samples get
/// content-hashed ids so provenance is reproducible (paper, Section 2:
/// "tracing provenance ... is a unique aspect of our approach").
using SampleId = uint64_t;

/// \brief One biological sample: an id, its regions, and its metadata.
///
/// The sample id is the many-to-many connection between regions and metadata
/// (Figure 2). Regions are kept coordinate-sorted by convention; operations
/// that construct samples call SortNow() (or produce sorted output directly).
struct Sample {
  SampleId id = 0;
  Metadata metadata;
  std::vector<GenomicRegion> regions;

  Sample() = default;
  explicit Sample(SampleId sample_id) : id(sample_id) {}

  size_t num_regions() const { return regions.size(); }

  void SortNow() {
    SortRegions(&regions);
    InvalidateChromIndex();
  }
  bool IsSorted() const { return RegionsSorted(regions); }

  /// The cached per-chromosome index over `regions` (see gdm/chrom_index.h),
  /// built lazily on first use. The cache self-invalidates when the region
  /// vector's storage or size changes (append, copy, reassignment); after
  /// IN-PLACE coordinate mutation callers must call InvalidateChromIndex()
  /// (SortNow does so). Lazy building is thread-safe: concurrent first
  /// callers may each build an index, but publication is an atomic
  /// compare-exchange, so every caller sees a fully built index and the
  /// parallel engine can fan out over untouched samples directly. The
  /// returned reference stays valid until the cache is invalidated —
  /// invalidating while other threads read the sample is a (pre-existing)
  /// caller contract violation.
  const ChromIndex& chrom_index() const;

  /// The cached columnar (SoA) layout over `regions` (see
  /// gdm/region_columns.h), built lazily against `schema` on first use with
  /// the same invalidation and thread-safety contract as chrom_index(). The
  /// caller must pass the owning dataset's schema every time; a schema
  /// change without a region-storage change is not detected.
  const RegionColumns& columns(const RegionSchema& schema) const;

  /// Resident bytes of the cached columnar layout (0 when not built).
  /// Safe to call concurrently with readers: reads the atomically
  /// published cache pointer only.
  uint64_t ColumnarCacheBytes() const;

  /// Drops only the cached columnar layout (the chromosome index stays),
  /// returning the bytes freed. The next columns() call rebuilds the same
  /// columns from the untouched row storage, so results are bit-identical;
  /// the resource shedder calls this between queries under memory
  /// pressure. Same caller contract as InvalidateChromIndex: must not race
  /// readers holding references into the cache.
  uint64_t EvictColumns() const;

  /// Drops the cached chromosome index and columnar layout; the next
  /// chrom_index()/columns() call rebuilds them.
  void InvalidateChromIndex() const {
    std::atomic_store_explicit(&chrom_index_cache_,
                               std::shared_ptr<const ChromIndex>(),
                               std::memory_order_release);
    std::atomic_store_explicit(&columns_cache_,
                               std::shared_ptr<const RegionColumns>(),
                               std::memory_order_release);
  }

 private:
  // Lazily built caches, published with the std::atomic_* shared_ptr free
  // functions so concurrent lazy builds race benignly (one winner, losers
  // drop their copy).
  mutable std::shared_ptr<const ChromIndex> chrom_index_cache_;
  mutable std::shared_ptr<const RegionColumns> columns_cache_;
};

/// \brief A named dataset: samples sharing one region schema.
///
/// The GDM constraint (Section 2): "data samples can be included into a named
/// dataset when their genomic regions have the same schema". Validate()
/// enforces it structurally (value arity and types).
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, RegionSchema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const RegionSchema& schema() const { return schema_; }
  RegionSchema* mutable_schema() { return &schema_; }

  const std::vector<Sample>& samples() const { return samples_; }
  std::vector<Sample>* mutable_samples() { return &samples_; }

  size_t num_samples() const { return samples_.size(); }
  const Sample& sample(size_t i) const { return samples_[i]; }
  Sample* mutable_sample(size_t i) { return &samples_[i]; }

  void AddSample(Sample sample) { samples_.push_back(std::move(sample)); }

  /// Total number of regions across samples.
  uint64_t TotalRegions() const;

  /// Total number of metadata entries across samples.
  uint64_t TotalMetadata() const;

  /// Checks the GDM constraint: every region of every sample has exactly
  /// schema().size() values whose types match the schema (NULL always
  /// matches), region coordinates are valid (left <= right), and sample ids
  /// are unique within the dataset.
  Status Validate() const;

  /// Estimated serialized size in bytes (used by the federated protocol's
  /// size estimates and by the E1 experiment's "29 GB" figure).
  uint64_t EstimateBytes() const;

  /// Estimated in-memory (resident) bytes of the row representation:
  /// region structs, their Value payload vectors and string heap, metadata.
  /// Caches (chrom index, columns) are not included.
  uint64_t EstimateResidentBytes() const;

  /// Resident bytes of the samples' built columnar caches (the reclaimable
  /// overlay the resource shedder may drop; 0 when nothing is built).
  uint64_t ColumnarCacheBytes() const;

  /// Evicts every sample's columnar cache (EvictColumns per sample),
  /// returning total bytes freed and counting evicted samples in
  /// `*samples_evicted` when non-null.
  uint64_t EvictColumnarCaches(uint64_t* samples_evicted = nullptr);

  /// Finds a sample by id; nullptr if absent.
  const Sample* FindSample(SampleId id) const;

  /// Renders the first `max_samples` samples / `max_regions` regions per
  /// sample, Figure 2 style (region table + metadata triples).
  std::string Describe(size_t max_samples = 2, size_t max_regions = 5) const;

 private:
  std::string name_;
  RegionSchema schema_;
  std::vector<Sample> samples_;
};

/// Derives a reproducible sample id from an operation tag and parent ids,
/// e.g. DeriveSampleId("MAP", {ref_id, exp_id}).
SampleId DeriveSampleId(const std::string& op_tag,
                        const std::vector<SampleId>& parents);

}  // namespace gdms::gdm

#endif  // GDMS_GDM_DATASET_H_
