#ifndef GDMS_GDM_SCHEMA_H_
#define GDMS_GDM_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "gdm/value.h"

namespace gdms::gdm {

/// One attribute in the variable part of a region schema.
struct AttrDef {
  std::string name;
  AttrType type = AttrType::kString;

  bool operator==(const AttrDef& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief Schema of the variable part of a dataset's regions.
///
/// Per the paper (Section 2, Figure 2) every region has five fixed
/// attributes — sample id, chromosome, left, right, strand — followed by a
/// dataset-specific variable part produced by the calling process (e.g.
/// P_VALUE for ChIP-seq peaks). RegionSchema describes that variable part.
class RegionSchema {
 public:
  RegionSchema() = default;
  explicit RegionSchema(std::vector<AttrDef> attrs)
      : attrs_(std::move(attrs)) {}

  /// Names of the five fixed attributes, in order.
  static const std::vector<std::string>& FixedAttributeNames();

  const std::vector<AttrDef>& attrs() const { return attrs_; }
  size_t size() const { return attrs_.size(); }
  bool empty() const { return attrs_.empty(); }

  const AttrDef& attr(size_t i) const { return attrs_[i]; }

  /// Index of attribute `name` in the variable part, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return IndexOf(name).has_value();
  }

  /// Appends an attribute; fails on duplicate name.
  Status AddAttr(const std::string& name, AttrType type);

  /// \brief Schema merging (the paper's interoperability mechanism).
  ///
  /// Fixed attributes are shared; variable attributes are concatenated.
  /// A name collision with identical type keeps a single attribute (values
  /// are aligned); a collision with differing types renames the right-side
  /// attribute with `right_prefix`.
  static RegionSchema Merge(const RegionSchema& left, const RegionSchema& right,
                            const std::string& right_prefix = "right_");

  /// \brief Join-style concatenation: every right attribute is appended,
  /// renaming any collision with `right_prefix` regardless of type.
  static RegionSchema Concat(const RegionSchema& left,
                             const RegionSchema& right,
                             const std::string& right_prefix = "right_");

  /// "name:TYPE, name:TYPE" rendering.
  std::string ToString() const;

  bool operator==(const RegionSchema& other) const {
    return attrs_ == other.attrs_;
  }

 private:
  std::vector<AttrDef> attrs_;
};

}  // namespace gdms::gdm

#endif  // GDMS_GDM_SCHEMA_H_
