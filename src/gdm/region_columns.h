#ifndef GDMS_GDM_REGION_COLUMNS_H_
#define GDMS_GDM_REGION_COLUMNS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gdm/region.h"
#include "gdm/schema.h"

namespace gdms::gdm {

/// One per-chromosome entry of a columnar sample's chunk directory: the
/// contiguous [begin, end) row range of the chromosome plus its maximum
/// region length. For columnar samples this subsumes ChromIndex — the same
/// figures the flat scheduler's partitioner needs, derived in the single
/// column-building pass.
struct ColumnChunk {
  int32_t chrom = 0;
  size_t begin = 0;
  size_t end = 0;
  int64_t max_len = 0;
};

/// \brief One schema attribute of a sample, stored as a column.
///
/// Coordinates live in RegionColumns; this carries the variable part. The
/// physical layout depends on the attribute type: INT/DOUBLE/BOOL columns
/// hold the non-null values densely typed, STRING columns are
/// dictionary-encoded (distinct strings once, uint32 codes per row). NULLs
/// are tracked by a validity bitmap that is elided when every row is valid.
class ValueColumn {
 public:
  ValueColumn() = default;

  /// Builds the column for attribute `attr_index` over `regions`.
  static ValueColumn Build(const std::vector<GenomicRegion>& regions,
                           size_t attr_index, AttrType type);

  AttrType type() const { return type_; }
  size_t size() const { return size_; }

  /// True when no row is NULL (the validity bitmap is elided).
  bool all_valid() const { return validity_.empty(); }
  bool IsValid(size_t i) const {
    return validity_.empty() || ((validity_[i >> 3] >> (i & 7)) & 1) != 0;
  }

  /// Materializes row `i` as a Value (NULL when invalid).
  Value At(size_t i) const;

  /// Dense typed payloads, indexed by ROW (null rows hold a zero/empty
  /// placeholder so kernels can index without rank queries).
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<uint8_t>& bools() const { return bools_; }
  const std::vector<uint32_t>& codes() const { return codes_; }
  const std::vector<std::string>& dict() const { return dict_; }

  uint64_t MemoryBytes() const;

 private:
  AttrType type_ = AttrType::kNull;
  size_t size_ = 0;
  std::vector<uint8_t> validity_;  // bit per row; empty = all valid
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> bools_;
  std::vector<uint32_t> codes_;
  std::vector<std::string> dict_;

  friend class RegionColumns;
};

/// \brief Columnar (structure-of-arrays) layout of one sample's regions.
///
/// The row layout scatters the hot coordinates across the heap: every
/// GenomicRegion carries a std::vector<Value> whose payload is a separate
/// allocation, so the sweep kernels pay a cache miss per region. Columns
/// pack the coordinates densely — as int32 when every coordinate fits (the
/// human genome's do; coordinates >= 2^31 escape to int64) — with strand as
/// one dictionary byte per row and each schema attribute as a ValueColumn.
///
/// Built in one pass over a coordinate-sorted region list and cached on the
/// owning Sample (Sample::columns()), exactly like the ChromIndex cache;
/// the chunk directory replaces ChromIndex for columnar consumers.
class RegionColumns {
 public:
  RegionColumns() = default;

  /// Builds columns over `regions`, which must be coordinate-sorted.
  static RegionColumns Build(const std::vector<GenomicRegion>& regions,
                             const RegionSchema& schema);

  size_t size() const { return size_; }

  /// True when coordinates are stored as int32.
  bool narrow() const { return narrow_; }

  const std::vector<ColumnChunk>& chunks() const { return chunks_; }
  const ColumnChunk* FindChunk(int32_t chrom) const;
  int64_t MaxLen(int32_t chrom) const;

  int64_t left(size_t i) const { return narrow_ ? left32_[i] : left64_[i]; }
  int64_t right(size_t i) const {
    return narrow_ ? right32_[i] : right64_[i];
  }

  /// Raw coordinate arrays; the 32/64 pair matching narrow() is populated,
  /// the other is empty.
  const std::vector<int32_t>& left32() const { return left32_; }
  const std::vector<int32_t>& right32() const { return right32_; }
  const std::vector<int64_t>& left64() const { return left64_; }
  const std::vector<int64_t>& right64() const { return right64_; }

  /// Strand dictionary codes, one byte per row (values of gdm::Strand).
  const std::vector<uint8_t>& strands() const { return strands_; }
  Strand strand(size_t i) const { return static_cast<Strand>(strands_[i]); }

  size_t num_attrs() const { return attrs_.size(); }

  /// The attribute's column, built on first access. Attribute columns are
  /// lazy because most queries touch a fraction of the schema (a MAP over
  /// one aggregate input never pays for dictionary-interning an unrelated
  /// STRING column); the coordinate pass in Build() stays cheap and each
  /// ValueColumn materializes only when a consumer asks for it. First
  /// accesses may race — like the Sample caches, each slot is published
  /// with a compare-and-swap and the loser adopts the winner's column.
  const ValueColumn& attr(size_t a) const;

  /// True when attribute `a` has already been materialized (accounting /
  /// test hook; never triggers a build).
  bool attr_built(size_t a) const {
    return std::atomic_load(&attrs_[a]) != nullptr;
  }

  /// Materializes the row form (used by the .gdmz reader).
  std::vector<GenomicRegion> ToRegions() const;

  /// Resident bytes of the columnar form (vectors + dictionaries).
  uint64_t MemoryBytes() const;

  /// True when the columns still describe `regions` storage-wise (same
  /// data pointer and size), mirroring ChromIndex::ValidFor.
  bool ValidFor(const std::vector<GenomicRegion>& regions) const {
    return data_ == regions.data() && size_ == regions.size();
  }

 private:
  size_t size_ = 0;
  bool narrow_ = true;
  std::vector<int32_t> left32_, right32_;
  std::vector<int64_t> left64_, right64_;
  std::vector<uint8_t> strands_;
  std::vector<ColumnChunk> chunks_;  // ordered by chrom (input is sorted)
  /// One lazily published slot per schema attribute; see attr(). The source
  /// region vector outlives the columns for every construction path (the
  /// Sample cache revalidates against it via ValidFor before handing the
  /// columns out).
  mutable std::vector<std::shared_ptr<const ValueColumn>> attrs_;
  std::vector<AttrType> attr_types_;
  const std::vector<GenomicRegion>* source_ = nullptr;
  const GenomicRegion* data_ = nullptr;

  friend class RegionColumnsBuilder;
};

}  // namespace gdms::gdm

#endif  // GDMS_GDM_REGION_COLUMNS_H_
