#include "gdm/chrom_index.h"

#include <algorithm>

namespace gdms::gdm {

ChromIndex ChromIndex::Build(const std::vector<GenomicRegion>& regions) {
  ChromIndex index;
  index.data_ = regions.data();
  index.size_ = regions.size();
  size_t i = 0;
  while (i < regions.size()) {
    Slice slice;
    slice.chrom = regions[i].chrom;
    slice.begin = i;
    while (i < regions.size() && regions[i].chrom == slice.chrom) {
      slice.max_len = std::max(slice.max_len, regions[i].length());
      ++i;
    }
    slice.end = i;
    index.slices_.push_back(slice);
  }
  return index;
}

const ChromIndex::Slice* ChromIndex::FindSlice(int32_t chrom) const {
  auto it = std::lower_bound(
      slices_.begin(), slices_.end(), chrom,
      [](const Slice& s, int32_t c) { return s.chrom < c; });
  if (it == slices_.end() || it->chrom != chrom) return nullptr;
  return &*it;
}

int64_t ChromIndex::MaxLen(int32_t chrom) const {
  const Slice* s = FindSlice(chrom);
  return s == nullptr ? 0 : s->max_len;
}

size_t ChromIndex::LowerBoundLeft(const std::vector<GenomicRegion>& regions,
                                  int32_t chrom, int64_t pos) const {
  const Slice* s = FindSlice(chrom);
  if (s == nullptr) {
    // Insertion point of the absent chromosome: start of the first slice
    // with a larger chromosome id.
    auto it = std::lower_bound(
        slices_.begin(), slices_.end(), chrom,
        [](const Slice& sl, int32_t c) { return sl.chrom < c; });
    return it == slices_.end() ? regions.size() : it->begin;
  }
  auto first = regions.begin() + s->begin;
  auto last = regions.begin() + s->end;
  auto it = std::lower_bound(
      first, last, pos,
      [](const GenomicRegion& r, int64_t p) { return r.left < p; });
  return static_cast<size_t>(it - regions.begin());
}

}  // namespace gdms::gdm
