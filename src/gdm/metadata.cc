#include "gdm/metadata.h"

#include <algorithm>

namespace gdms::gdm {

void Metadata::Add(const std::string& attr, const std::string& value) {
  MetaEntry e{attr, value};
  auto it = std::lower_bound(entries_.begin(), entries_.end(), e);
  if (it != entries_.end() && *it == e) return;
  entries_.insert(it, std::move(e));
}

void Metadata::RemoveAttr(const std::string& attr) {
  entries_.erase(
      std::remove_if(entries_.begin(), entries_.end(),
                     [&](const MetaEntry& e) { return e.attr == attr; }),
      entries_.end());
}

std::vector<std::string> Metadata::ValuesOf(const std::string& attr) const {
  std::vector<std::string> out;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), MetaEntry{attr, ""});
  for (; it != entries_.end() && it->attr == attr; ++it) {
    out.push_back(it->value);
  }
  return out;
}

std::string Metadata::FirstValue(const std::string& attr) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), MetaEntry{attr, ""});
  if (it != entries_.end() && it->attr == attr) return it->value;
  return "";
}

bool Metadata::Has(const std::string& attr) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), MetaEntry{attr, ""});
  return it != entries_.end() && it->attr == attr;
}

bool Metadata::HasPair(const std::string& attr,
                       const std::string& value) const {
  MetaEntry e{attr, value};
  auto it = std::lower_bound(entries_.begin(), entries_.end(), e);
  return it != entries_.end() && *it == e;
}

Metadata Metadata::Union(const Metadata& a, const Metadata& b) {
  Metadata out;
  out.entries_.reserve(a.entries_.size() + b.entries_.size());
  std::merge(a.entries_.begin(), a.entries_.end(), b.entries_.begin(),
             b.entries_.end(), std::back_inserter(out.entries_));
  out.entries_.erase(std::unique(out.entries_.begin(), out.entries_.end()),
                     out.entries_.end());
  return out;
}

Metadata Metadata::WithPrefix(const std::string& prefix) const {
  Metadata out;
  out.entries_.reserve(entries_.size());
  for (const auto& e : entries_) {
    out.entries_.push_back({prefix + e.attr, e.value});
  }
  std::sort(out.entries_.begin(), out.entries_.end());
  return out;
}

std::vector<std::string> Metadata::AttributeNames() const {
  std::vector<std::string> out;
  for (const auto& e : entries_) {
    if (out.empty() || out.back() != e.attr) out.push_back(e.attr);
  }
  return out;
}

}  // namespace gdms::gdm
