#include "gdm/region.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace gdms::gdm {

char StrandChar(Strand s) {
  switch (s) {
    case Strand::kPlus:
      return '+';
    case Strand::kMinus:
      return '-';
    case Strand::kNone:
      return '*';
  }
  return '*';
}

Strand StrandFromChar(char c) {
  if (c == '+') return Strand::kPlus;
  if (c == '-') return Strand::kMinus;
  return Strand::kNone;
}

namespace {

struct ChromDictImpl {
  mutable std::shared_mutex mu;
  std::unordered_map<std::string, int32_t> by_name;
  std::vector<std::string> by_id;
};

}  // namespace

struct ChromDictImplAccess {
  static ChromDictImpl* Get(const ChromDict& dict) {
    if (dict.impl_ == nullptr) {
      dict.impl_ = new ChromDictImpl();
    }
    return static_cast<ChromDictImpl*>(dict.impl_);
  }
};

ChromDict& ChromDict::Global() {
  static ChromDict* kDict = new ChromDict();
  return *kDict;
}

int32_t ChromDict::Intern(const std::string& name) {
  ChromDictImpl* impl = ChromDictImplAccess::Get(*this);
  {
    std::shared_lock<std::shared_mutex> lk(impl->mu);
    auto it = impl->by_name.find(name);
    if (it != impl->by_name.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lk(impl->mu);
  auto it = impl->by_name.find(name);
  if (it != impl->by_name.end()) return it->second;
  int32_t id = static_cast<int32_t>(impl->by_id.size());
  impl->by_id.push_back(name);
  impl->by_name.emplace(name, id);
  return id;
}

std::string ChromDict::Name(int32_t id) const {
  ChromDictImpl* impl = ChromDictImplAccess::Get(*this);
  std::shared_lock<std::shared_mutex> lk(impl->mu);
  if (id < 0 || static_cast<size_t>(id) >= impl->by_id.size()) return "?";
  return impl->by_id[id];
}

size_t ChromDict::size() const {
  ChromDictImpl* impl = ChromDictImplAccess::Get(*this);
  std::shared_lock<std::shared_mutex> lk(impl->mu);
  return impl->by_id.size();
}

int32_t InternChrom(const std::string& name) {
  return ChromDict::Global().Intern(name);
}

std::string ChromName(int32_t id) { return ChromDict::Global().Name(id); }

int64_t GenomicRegion::DistanceTo(const GenomicRegion& other) const {
  if (chrom != other.chrom) return std::numeric_limits<int64_t>::max();
  if (Overlaps(other)) {
    int64_t ov = std::min(right, other.right) - std::max(left, other.left);
    return -ov;
  }
  if (right <= other.left) return other.left - right;
  return left - other.right;
}

std::string GenomicRegion::CoordString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s:%lld-%lld(%c)", ChromName(chrom).c_str(),
                static_cast<long long>(left), static_cast<long long>(right),
                StrandChar(strand));
  return buf;
}

std::string GenomicRegion::ToString() const {
  std::string out = ChromName(chrom);
  out += "\t" + std::to_string(left);
  out += "\t" + std::to_string(right);
  out += "\t";
  out.push_back(StrandChar(strand));
  for (const auto& v : values) {
    out += "\t" + v.ToString();
  }
  return out;
}

void SortRegions(std::vector<GenomicRegion>* regions) {
  std::sort(regions->begin(), regions->end(),
            [](const GenomicRegion& a, const GenomicRegion& b) {
              return a.CoordLess(b);
            });
}

bool RegionsSorted(const std::vector<GenomicRegion>& regions) {
  for (size_t i = 1; i < regions.size(); ++i) {
    if (regions[i].CoordLess(regions[i - 1])) return false;
  }
  return true;
}

GenomeAssembly GenomeAssembly::HumanLike(int chroms, int64_t first_length) {
  GenomeAssembly g;
  for (int i = 0; i < chroms; ++i) {
    // Lengths taper from first_length down to ~20% of it, echoing the human
    // karyotype's decay from chr1 to chr22.
    double frac =
        1.0 - 0.8 * (static_cast<double>(i) / std::max(1, chroms - 1));
    int64_t len =
        static_cast<int64_t>(static_cast<double>(first_length) * frac);
    g.AddChromosome("chr" + std::to_string(i + 1), len);
  }
  return g;
}

void GenomeAssembly::AddChromosome(const std::string& name, int64_t length) {
  chrom_ids_.push_back(InternChrom(name));
  lengths_.push_back(length);
}

int64_t GenomeAssembly::LengthOf(int32_t chrom_id) const {
  for (size_t i = 0; i < chrom_ids_.size(); ++i) {
    if (chrom_ids_[i] == chrom_id) return lengths_[i];
  }
  return 0;
}

int64_t GenomeAssembly::TotalLength() const {
  int64_t total = 0;
  for (int64_t l : lengths_) total += l;
  return total;
}

}  // namespace gdms::gdm
