#include "gdm/dataset.h"

#include <unordered_set>

#include "common/hash.h"
#include "obs/metrics.h"

namespace gdms::gdm {

namespace {

// Cumulative bytes of columnar caches built (the cache-build winners only;
// racing losers drop their copy without counting). Paired with
// gdms_mem_columnar_cache_bytes (current occupancy, sampled by the resource
// tracker) and gdms_mem_evicted_bytes_total this exposes cache churn.
obs::Counter* ColumnarBuiltCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "gdms_mem_columnar_built_bytes_total");
  return c;
}

}  // namespace

const ChromIndex& Sample::chrom_index() const {
  auto cached = std::atomic_load_explicit(&chrom_index_cache_,
                                          std::memory_order_acquire);
  if (cached != nullptr && cached->ValidFor(regions)) return *cached;
  auto built = std::make_shared<const ChromIndex>(ChromIndex::Build(regions));
  // Publish atomically; if another thread won the race, adopt its index (the
  // cache keeps it alive) and drop ours. ValidFor re-check covers a winner
  // built against older storage.
  if (std::atomic_compare_exchange_strong_explicit(
          &chrom_index_cache_, &cached, built, std::memory_order_acq_rel,
          std::memory_order_acquire)) {
    return *built;
  }
  if (cached != nullptr && cached->ValidFor(regions)) return *cached;
  std::atomic_store_explicit(&chrom_index_cache_, built,
                             std::memory_order_release);
  return *built;
}

const RegionColumns& Sample::columns(const RegionSchema& schema) const {
  auto cached =
      std::atomic_load_explicit(&columns_cache_, std::memory_order_acquire);
  if (cached != nullptr && cached->ValidFor(regions)) return *cached;
  auto built = std::make_shared<const RegionColumns>(
      RegionColumns::Build(regions, schema));
  if (std::atomic_compare_exchange_strong_explicit(
          &columns_cache_, &cached, built, std::memory_order_acq_rel,
          std::memory_order_acquire)) {
    ColumnarBuiltCounter()->Add(built->MemoryBytes());
    return *built;
  }
  if (cached != nullptr && cached->ValidFor(regions)) return *cached;
  std::atomic_store_explicit(&columns_cache_, built,
                             std::memory_order_release);
  ColumnarBuiltCounter()->Add(built->MemoryBytes());
  return *built;
}

uint64_t Sample::ColumnarCacheBytes() const {
  auto cached =
      std::atomic_load_explicit(&columns_cache_, std::memory_order_acquire);
  return cached != nullptr ? cached->MemoryBytes() : 0;
}

uint64_t Sample::EvictColumns() const {
  auto cached = std::atomic_exchange_explicit(
      &columns_cache_, std::shared_ptr<const RegionColumns>(),
      std::memory_order_acq_rel);
  return cached != nullptr ? cached->MemoryBytes() : 0;
}

uint64_t Dataset::TotalRegions() const {
  uint64_t total = 0;
  for (const auto& s : samples_) total += s.regions.size();
  return total;
}

uint64_t Dataset::TotalMetadata() const {
  uint64_t total = 0;
  for (const auto& s : samples_) total += s.metadata.size();
  return total;
}

Status Dataset::Validate() const {
  std::unordered_set<SampleId> seen;
  for (const auto& s : samples_) {
    if (!seen.insert(s.id).second) {
      return Status::InvalidArgument("duplicate sample id " +
                                     std::to_string(s.id) + " in dataset " +
                                     name_);
    }
    for (const auto& r : s.regions) {
      if (r.left > r.right) {
        return Status::InvalidArgument("region with left > right in sample " +
                                       std::to_string(s.id) + ": " +
                                       r.CoordString());
      }
      if (r.values.size() != schema_.size()) {
        return Status::SchemaMismatch(
            "region has " + std::to_string(r.values.size()) +
            " values, schema has " + std::to_string(schema_.size()) +
            " attributes (dataset " + name_ + ")");
      }
      for (size_t i = 0; i < r.values.size(); ++i) {
        const Value& v = r.values[i];
        if (v.is_null()) continue;
        if (v.type() != schema_.attr(i).type) {
          return Status::TypeError("attribute " + schema_.attr(i).name +
                                   " expects " +
                                   AttrTypeName(schema_.attr(i).type) +
                                   " but region carries " +
                                   AttrTypeName(v.type()));
        }
      }
    }
  }
  return Status::OK();
}

uint64_t Dataset::EstimateBytes() const {
  // Text-serialization estimate: fixed part ~ 40 bytes per region, each value
  // rendered plus a tab, each metadata entry attr+value+id.
  uint64_t total = 0;
  for (const auto& s : samples_) {
    for (const auto& r : s.regions) {
      total += 40;
      for (const auto& v : r.values) total += v.ToString().size() + 1;
    }
    for (const auto& e : s.metadata.entries()) {
      total += e.attr.size() + e.value.size() + 22;
    }
  }
  return total;
}

uint64_t Dataset::EstimateResidentBytes() const {
  uint64_t total = 0;
  for (const auto& s : samples_) {
    total += s.regions.capacity() * sizeof(GenomicRegion);
    for (const auto& r : s.regions) {
      total += r.values.capacity() * sizeof(Value);
      for (const auto& v : r.values) {
        // Strings beyond the SSO buffer own a heap block.
        if (v.is_string() && v.AsString().size() > 15) {
          total += v.AsString().capacity();
        }
      }
    }
    for (const auto& e : s.metadata.entries()) {
      total += sizeof(e) + e.attr.capacity() + e.value.capacity();
    }
  }
  return total;
}

uint64_t Dataset::ColumnarCacheBytes() const {
  uint64_t total = 0;
  for (const auto& s : samples_) total += s.ColumnarCacheBytes();
  return total;
}

uint64_t Dataset::EvictColumnarCaches(uint64_t* samples_evicted) {
  uint64_t freed = 0;
  for (const auto& s : samples_) {
    uint64_t b = s.EvictColumns();
    if (b > 0) {
      freed += b;
      if (samples_evicted != nullptr) ++*samples_evicted;
    }
  }
  return freed;
}

const Sample* Dataset::FindSample(SampleId id) const {
  for (const auto& s : samples_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

std::string Dataset::Describe(size_t max_samples, size_t max_regions) const {
  std::string out = "Dataset " + name_ + " [" + schema_.ToString() + "]  (" +
                    std::to_string(samples_.size()) + " samples, " +
                    std::to_string(TotalRegions()) + " regions)\n";
  size_t shown = 0;
  for (const auto& s : samples_) {
    if (shown++ >= max_samples) {
      out += "  ...\n";
      break;
    }
    out += "  sample " + std::to_string(s.id) + " (" +
           std::to_string(s.regions.size()) + " regions)\n";
    size_t rn = 0;
    for (const auto& r : s.regions) {
      if (rn++ >= max_regions) {
        out += "    ...\n";
        break;
      }
      out += "    " + std::to_string(s.id) + "\t" + r.ToString() + "\n";
    }
    for (const auto& e : s.metadata.entries()) {
      out += "    meta " + std::to_string(s.id) + "\t" + e.attr + "\t" +
             e.value + "\n";
    }
  }
  return out;
}

SampleId DeriveSampleId(const std::string& op_tag,
                        const std::vector<SampleId>& parents) {
  uint64_t h = Fnv1a64(op_tag);
  for (SampleId p : parents) h = HashCombine(h, Mix64(p));
  // Keep derived ids out of the small-integer space used by source samples.
  return h | (1ULL << 63);
}

}  // namespace gdms::gdm
