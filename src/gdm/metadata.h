#ifndef GDMS_GDM_METADATA_H_
#define GDMS_GDM_METADATA_H_

#include <string>
#include <vector>

namespace gdms::gdm {

/// One metadata attribute-value pair. With the owning sample's id these form
/// the (id, attribute, value) triples of the paper's Figure 2.
struct MetaEntry {
  std::string attr;
  std::string value;

  bool operator==(const MetaEntry& other) const {
    return attr == other.attr && value == other.value;
  }
  bool operator<(const MetaEntry& other) const {
    if (attr != other.attr) return attr < other.attr;
    return value < other.value;
  }
};

/// \brief Semi-structured metadata of one sample.
///
/// Arbitrary attribute-value pairs; an attribute may repeat with multiple
/// values (biologists "are very liberal" — the model imposes no schema).
/// Entries are kept sorted for deterministic output and fast lookup.
class Metadata {
 public:
  Metadata() = default;

  /// Adds a pair (duplicates are kept once).
  void Add(const std::string& attr, const std::string& value);

  /// Removes all values of `attr`.
  void RemoveAttr(const std::string& attr);

  /// All values of `attr`, in sorted order.
  std::vector<std::string> ValuesOf(const std::string& attr) const;

  /// First value of `attr`, or "" if absent.
  std::string FirstValue(const std::string& attr) const;

  bool Has(const std::string& attr) const;
  bool HasPair(const std::string& attr, const std::string& value) const;

  const std::vector<MetaEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Union of two metadata sets (GMQL binary operations merge the metadata
  /// of contributing samples).
  static Metadata Union(const Metadata& a, const Metadata& b);

  /// Copy with every attribute name prefixed (used by JOIN/MAP to keep the
  /// two operands' metadata distinguishable, e.g. "left.cell").
  Metadata WithPrefix(const std::string& prefix) const;

  /// Distinct attribute names.
  std::vector<std::string> AttributeNames() const;

  bool operator==(const Metadata& other) const {
    return entries_ == other.entries_;
  }

  /// Resident bytes: the entry vector plus every string's heap block.
  uint64_t MemoryBytes() const {
    uint64_t total = entries_.capacity() * sizeof(MetaEntry);
    for (const MetaEntry& e : entries_) {
      total += e.attr.capacity() + e.value.capacity();
    }
    return total;
  }

 private:
  std::vector<MetaEntry> entries_;
};

}  // namespace gdms::gdm

#endif  // GDMS_GDM_METADATA_H_
