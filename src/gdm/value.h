#ifndef GDMS_GDM_VALUE_H_
#define GDMS_GDM_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace gdms::gdm {

/// Type of a region attribute in the variable part of a GDM schema.
enum class AttrType {
  kNull = 0,
  kInt,
  kDouble,
  kString,
  kBool,
};

/// Name of an AttrType ("INT", "DOUBLE", ...).
const char* AttrTypeName(AttrType t);

/// Parses an AttrType name (case-insensitive).
Result<AttrType> ParseAttrType(const std::string& name);

/// \brief A dynamically typed attribute value.
///
/// GDM region attributes beyond the fixed five are typed by the dataset
/// schema; Value carries one such attribute. NULL values arise from schema
/// merging (paper, Section 2): when two datasets with different schemas are
/// combined, attributes missing on one side become NULL.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}
  explicit Value(bool v) : data_(v) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }

  AttrType type() const;

  /// Accessors; calling the wrong one is a programming error (asserts).
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  bool AsBool() const { return std::get<bool>(data_); }

  /// Numeric view: ints and doubles convert, bools are 0/1; NULL and strings
  /// yield an error.
  Result<double> ToNumeric() const;

  /// Renders for output files and messages; NULL renders as ".".
  std::string ToString() const;

  /// Parses `text` as a value of type `t` ("." parses to NULL for any type).
  static Result<Value> Parse(const std::string& text, AttrType t);

  /// SQL-style three-way comparison used by predicates and sorting: NULLs
  /// sort first and compare equal to each other; numeric types compare by
  /// value across int/double.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

 private:
  std::variant<std::monostate, int64_t, double, std::string, bool> data_;
};

}  // namespace gdms::gdm

#endif  // GDMS_GDM_VALUE_H_
