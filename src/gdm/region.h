#ifndef GDMS_GDM_REGION_H_
#define GDMS_GDM_REGION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "gdm/value.h"

namespace gdms::gdm {

/// DNA strand of a region: '+', '-', or '*' when the region is not stranded
/// (paper, Section 2).
enum class Strand : uint8_t {
  kPlus = 0,
  kMinus = 1,
  kNone = 2,
};

char StrandChar(Strand s);
Strand StrandFromChar(char c);

/// \brief Process-wide chromosome name interning.
///
/// Regions store a compact int32 chromosome id; the dictionary maps ids to
/// names ("chr1", ...). Interning keeps cross-dataset operations cheap (ids
/// compare directly) and is thread-safe.
class ChromDict {
 public:
  /// The singleton dictionary.
  static ChromDict& Global();

  /// Returns the id for `name`, interning it if new.
  int32_t Intern(const std::string& name);

  /// Returns the name for `id`; "?" for unknown ids.
  std::string Name(int32_t id) const;

  /// Number of interned names.
  size_t size() const;

 private:
  ChromDict() = default;

  mutable void* impl_ = nullptr;  // opaque, defined in region.cc

  friend struct ChromDictImplAccess;
};

/// Convenience wrappers over ChromDict::Global().
int32_t InternChrom(const std::string& name);
std::string ChromName(int32_t id);

/// \brief One genomic region: fixed coordinates plus schema-typed values.
///
/// The fixed part is (chromosome, left, right, strand); the owning sample
/// supplies the id. Coordinates are 0-based half-open [left, right), the
/// convention of the BED format the paper's examples use.
struct GenomicRegion {
  int32_t chrom = 0;
  int64_t left = 0;
  int64_t right = 0;
  Strand strand = Strand::kNone;
  /// Variable part, positionally aligned with the dataset's RegionSchema.
  std::vector<Value> values;

  GenomicRegion() = default;
  GenomicRegion(int32_t chrom_id, int64_t l, int64_t r,
                Strand s = Strand::kNone, std::vector<Value> vals = {})
      : chrom(chrom_id),
        left(l),
        right(r),
        strand(s),
        values(std::move(vals)) {}

  int64_t length() const { return right - left; }
  int64_t center() const { return (left + right) / 2; }

  /// True if this region and `other` share at least one base.
  bool Overlaps(const GenomicRegion& other) const {
    return chrom == other.chrom && left < other.right && other.left < right;
  }

  /// Genometric distance: number of bases between the two regions; 0 for
  /// adjacent regions, negative for overlapping ones (overlap size, negated),
  /// and INT64_MAX across chromosomes. This is the distance GMQL's
  /// genometric join predicates (DLE/DGE/MD) evaluate.
  int64_t DistanceTo(const GenomicRegion& other) const;

  /// Ordering by (chrom, left, right, strand); values ignored.
  bool CoordLess(const GenomicRegion& other) const {
    if (chrom != other.chrom) return chrom < other.chrom;
    if (left != other.left) return left < other.left;
    if (right != other.right) return right < other.right;
    return strand < other.strand;
  }

  /// "chr1:100-200(+)" rendering (no values).
  std::string CoordString() const;

  /// Tab-separated rendering including values.
  std::string ToString() const;
};

/// Sorts regions by coordinate (chrom, left, right, strand).
void SortRegions(std::vector<GenomicRegion>* regions);

/// True if regions are coordinate-sorted.
bool RegionsSorted(const std::vector<GenomicRegion>& regions);

/// \brief A reference genome: ordered chromosomes with lengths.
///
/// Stands in for the assemblies (hg19 etc.) that anchor real datasets; the
/// synthetic workload generators draw coordinates from an assembly.
class GenomeAssembly {
 public:
  GenomeAssembly() = default;

  /// A small human-like assembly: `chroms` chromosomes whose lengths decay
  /// from `first_length` roughly like the human karyotype.
  static GenomeAssembly HumanLike(int chroms = 22,
                                  int64_t first_length = 240000000);

  void AddChromosome(const std::string& name, int64_t length);

  size_t num_chromosomes() const { return chrom_ids_.size(); }
  int32_t chrom_id(size_t i) const { return chrom_ids_[i]; }
  int64_t chrom_length(size_t i) const { return lengths_[i]; }
  int64_t LengthOf(int32_t chrom_id) const;

  /// Sum of chromosome lengths.
  int64_t TotalLength() const;

 private:
  std::vector<int32_t> chrom_ids_;
  std::vector<int64_t> lengths_;
};

}  // namespace gdms::gdm

#endif  // GDMS_GDM_REGION_H_
