#ifndef GDMS_GDM_CHROM_INDEX_H_
#define GDMS_GDM_CHROM_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gdm/region.h"

namespace gdms::gdm {

/// \brief Per-chromosome index over one coordinate-sorted region list.
///
/// One contiguous [begin, end) slice per chromosome plus the chromosome's
/// maximum region length. Built in one O(n) pass and cached on the owning
/// Sample (Sample::chrom_index()), it replaces the per-use O(n) rescans the
/// engine's partitioner used to pay for every sample pair: chromosome slice
/// lookup and max-length queries become O(log #chroms), and position lookups
/// become O(log) within one chromosome slice.
class ChromIndex {
 public:
  struct Slice {
    int32_t chrom = 0;
    size_t begin = 0;  ///< first region of the chromosome
    size_t end = 0;    ///< one past the last region of the chromosome
    int64_t max_len = 0;  ///< max region length within the slice
  };

  ChromIndex() = default;

  /// Builds the index over `regions`, which must be coordinate-sorted (the
  /// dataset convention; see Sample::SortNow).
  static ChromIndex Build(const std::vector<GenomicRegion>& regions);

  /// The chromosome's slice, or nullptr when the chromosome is absent.
  const Slice* FindSlice(int32_t chrom) const;

  /// Max region length on `chrom`; 0 when the chromosome is absent.
  int64_t MaxLen(int32_t chrom) const;

  /// First index within the chromosome's slice whose region.left >= pos;
  /// the slice's end when all regions start before pos (or the chromosome is
  /// absent, in which case begin == end == the insertion point is
  /// meaningless and size() of regions is returned). `regions` must be the
  /// vector the index was built over.
  size_t LowerBoundLeft(const std::vector<GenomicRegion>& regions,
                        int32_t chrom, int64_t pos) const;

  const std::vector<Slice>& slices() const { return slices_; }

  /// True when the index still describes `regions` storage-wise: same vector
  /// data pointer and size. In-place coordinate mutation is NOT detected —
  /// mutators must call Sample::InvalidateChromIndex() (SortNow does).
  bool ValidFor(const std::vector<GenomicRegion>& regions) const {
    return data_ == regions.data() && size_ == regions.size();
  }

 private:
  std::vector<Slice> slices_;  // ordered by chrom (input is sorted)
  const GenomicRegion* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace gdms::gdm

#endif  // GDMS_GDM_CHROM_INDEX_H_
