#include "gdm/region_columns.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>

#include "obs/metrics.h"

namespace gdms::gdm {

namespace {

void SetBit(std::vector<uint8_t>* bits, size_t i) {
  (*bits)[i >> 3] |= static_cast<uint8_t>(1u << (i & 7));
}

// Cumulative bytes of lazily materialized attribute columns (CAS winners
// only). Distinct from gdms_mem_columnar_built_bytes_total: coordinate
// columns count there at Sample-cache publication; attribute columns count
// here at first access.
obs::Counter* AttrBuiltCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "gdms_mem_attr_columns_built_bytes_total");
  return c;
}

}  // namespace

ValueColumn ValueColumn::Build(const std::vector<GenomicRegion>& regions,
                               size_t attr_index, AttrType type) {
  ValueColumn col;
  col.type_ = type;
  col.size_ = regions.size();
  const size_t n = regions.size();

  // First pass: find nulls. A row is null when the region's value vector is
  // short or the slot holds a NULL (both legal per Dataset::Validate).
  size_t nulls = 0;
  for (const auto& r : regions) {
    if (attr_index >= r.values.size() || r.values[attr_index].is_null()) {
      ++nulls;
    }
  }
  if (nulls > 0) {
    col.validity_.assign((n + 7) / 8, 0);
  }

  switch (type) {
    case AttrType::kInt:
      col.ints_.assign(n, 0);
      break;
    case AttrType::kDouble:
      col.doubles_.assign(n, 0.0);
      break;
    case AttrType::kBool:
      col.bools_.assign(n, 0);
      break;
    case AttrType::kString:
      col.codes_.assign(n, 0);
      break;
    case AttrType::kNull:
      return col;  // all-null column: validity bitmap only
  }

  std::unordered_map<std::string, uint32_t> dict_index;
  for (size_t i = 0; i < n; ++i) {
    const auto& r = regions[i];
    if (attr_index >= r.values.size() || r.values[attr_index].is_null()) {
      continue;
    }
    const Value& v = r.values[attr_index];
    if (nulls > 0) SetBit(&col.validity_, i);
    switch (type) {
      case AttrType::kInt:
        col.ints_[i] = v.AsInt();
        break;
      case AttrType::kDouble:
        col.doubles_[i] = v.AsDouble();
        break;
      case AttrType::kBool:
        col.bools_[i] = v.AsBool() ? 1 : 0;
        break;
      case AttrType::kString: {
        const std::string& s = v.AsString();
        auto [it, inserted] = dict_index.emplace(
            s, static_cast<uint32_t>(col.dict_.size()));
        if (inserted) col.dict_.push_back(s);
        col.codes_[i] = it->second;
        break;
      }
      case AttrType::kNull:
        break;
    }
  }
  return col;
}

Value ValueColumn::At(size_t i) const {
  if (!IsValid(i)) return Value::Null();
  switch (type_) {
    case AttrType::kInt:
      return Value(ints_[i]);
    case AttrType::kDouble:
      return Value(doubles_[i]);
    case AttrType::kBool:
      return Value(bools_[i] != 0);
    case AttrType::kString:
      return Value(dict_[codes_[i]]);
    case AttrType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

uint64_t ValueColumn::MemoryBytes() const {
  uint64_t bytes = sizeof(*this);
  bytes += validity_.capacity();
  bytes += ints_.capacity() * sizeof(int64_t);
  bytes += doubles_.capacity() * sizeof(double);
  bytes += bools_.capacity();
  bytes += codes_.capacity() * sizeof(uint32_t);
  bytes += dict_.capacity() * sizeof(std::string);
  for (const auto& s : dict_) bytes += s.capacity();
  return bytes;
}

RegionColumns RegionColumns::Build(const std::vector<GenomicRegion>& regions,
                                   const RegionSchema& schema) {
  assert(RegionsSorted(regions));
  RegionColumns cols;
  cols.size_ = regions.size();
  cols.data_ = regions.data();
  const size_t n = regions.size();

  bool narrow = true;
  for (const auto& r : regions) {
    // left <= right by convention, so checking right covers both; left can
    // still be negative-adjacent from windowed ops, keep the explicit check.
    if (r.right > std::numeric_limits<int32_t>::max() ||
        r.left < std::numeric_limits<int32_t>::min()) {
      narrow = false;
      break;
    }
  }
  cols.narrow_ = narrow;

  if (narrow) {
    cols.left32_.resize(n);
    cols.right32_.resize(n);
  } else {
    cols.left64_.resize(n);
    cols.right64_.resize(n);
  }
  cols.strands_.resize(n);

  int32_t cur_chrom = 0;
  bool have_chunk = false;
  ColumnChunk chunk;
  for (size_t i = 0; i < n; ++i) {
    const auto& r = regions[i];
    if (narrow) {
      cols.left32_[i] = static_cast<int32_t>(r.left);
      cols.right32_[i] = static_cast<int32_t>(r.right);
    } else {
      cols.left64_[i] = r.left;
      cols.right64_[i] = r.right;
    }
    cols.strands_[i] = static_cast<uint8_t>(r.strand);
    if (!have_chunk || r.chrom != cur_chrom) {
      if (have_chunk) {
        chunk.end = i;
        cols.chunks_.push_back(chunk);
      }
      have_chunk = true;
      cur_chrom = r.chrom;
      chunk = ColumnChunk{r.chrom, i, i, 0};
    }
    chunk.max_len = std::max(chunk.max_len, r.length());
  }
  if (have_chunk) {
    chunk.end = n;
    cols.chunks_.push_back(chunk);
  }

  // Attribute columns stay empty slots until attr() materializes them.
  cols.attrs_.resize(schema.size());
  cols.attr_types_.reserve(schema.size());
  for (size_t a = 0; a < schema.size(); ++a) {
    cols.attr_types_.push_back(schema.attr(a).type);
  }
  cols.source_ = &regions;
  return cols;
}

const ValueColumn& RegionColumns::attr(size_t a) const {
  std::shared_ptr<const ValueColumn> col = std::atomic_load(&attrs_[a]);
  if (col == nullptr) {
    auto built = std::make_shared<const ValueColumn>(
        ValueColumn::Build(*source_, a, attr_types_[a]));
    std::shared_ptr<const ValueColumn> expected;
    if (std::atomic_compare_exchange_strong(&attrs_[a], &expected, built)) {
      AttrBuiltCounter()->Add(built->MemoryBytes());
      col = std::move(built);
    } else {
      col = std::move(expected);  // another thread won the race; adopt its column
    }
  }
  return *col;
}

const ColumnChunk* RegionColumns::FindChunk(int32_t chrom) const {
  for (const auto& c : chunks_) {
    if (c.chrom == chrom) return &c;
  }
  return nullptr;
}

int64_t RegionColumns::MaxLen(int32_t chrom) const {
  const ColumnChunk* c = FindChunk(chrom);
  return c == nullptr ? 0 : c->max_len;
}

std::vector<GenomicRegion> RegionColumns::ToRegions() const {
  std::vector<const ValueColumn*> cols;
  cols.reserve(attrs_.size());
  for (size_t a = 0; a < attrs_.size(); ++a) cols.push_back(&attr(a));
  std::vector<GenomicRegion> out;
  out.resize(size_);
  for (const auto& chunk : chunks_) {
    for (size_t i = chunk.begin; i < chunk.end; ++i) {
      GenomicRegion& r = out[i];
      r.chrom = chunk.chrom;
      r.left = left(i);
      r.right = right(i);
      r.strand = strand(i);
      if (!cols.empty()) {
        r.values.reserve(cols.size());
        for (const ValueColumn* col : cols) r.values.push_back(col->At(i));
      }
    }
  }
  return out;
}

uint64_t RegionColumns::MemoryBytes() const {
  uint64_t bytes = sizeof(*this);
  bytes += left32_.capacity() * sizeof(int32_t);
  bytes += right32_.capacity() * sizeof(int32_t);
  bytes += left64_.capacity() * sizeof(int64_t);
  bytes += right64_.capacity() * sizeof(int64_t);
  bytes += strands_.capacity();
  bytes += chunks_.capacity() * sizeof(ColumnChunk);
  // Only materialized attribute columns occupy memory.
  for (const auto& slot : attrs_) {
    std::shared_ptr<const ValueColumn> col = std::atomic_load(&slot);
    if (col != nullptr) bytes += col->MemoryBytes();
  }
  return bytes;
}

}  // namespace gdms::gdm
