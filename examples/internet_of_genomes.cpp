// Section 4.5: search methods and the Internet of Genomes.
//
// Research hosts publish links to their experimental data with metadata
// (the simple publishing protocol), a third-party crawler indexes them, and
// a search service answers keyword queries — ontology-expanded — with
// snippets that say whether each dataset is already cached. Users then
// fetch datasets asynchronously.

#include <cstdio>

#include "common/string_util.h"
#include "search/internet_of_genomes.h"
#include "search/region_search.h"
#include "sim/generators.h"

using namespace gdms;         // NOLINT: example brevity
using namespace gdms::search; // NOLINT: example brevity

int main() {
  auto genome = gdm::GenomeAssembly::HumanLike(5, 40000000);

  // Three research centers publish their data.
  iog::Host polimi("polimi.it");
  iog::Host broad("broadinstitute.org");
  iog::Host sanger("sanger.ac.uk");

  auto publish_peaks = [&](iog::Host* host, uint64_t seed,
                           const std::string& cell,
                           const std::string& antibody) {
    sim::PeakDatasetOptions opt;
    opt.num_samples = 2;
    opt.peaks_per_sample = 600;
    opt.cells = {cell};
    opt.antibodies = {antibody};
    gdm::Metadata meta;
    meta.Add("dataType", "ChipSeq");
    meta.Add("cell", cell);
    meta.Add("antibody", antibody);
    meta.Add("description", antibody + " ChIP-seq in " + cell);
    gdm::Dataset ds = sim::GeneratePeakDataset(genome, opt, seed,
                                               antibody + "_" + cell);
    host->Publish(std::move(ds), std::move(meta));
  };
  publish_peaks(&polimi, 1, "K562", "CTCF");
  publish_peaks(&polimi, 2, "HeLa-S3", "H3K27ac");
  publish_peaks(&broad, 3, "GM12878", "CTCF");
  publish_peaks(&broad, 4, "K562", "POLR2A");
  publish_peaks(&sanger, 5, "IMR90", "H3K4me3");
  // One private dataset: visible to its owner only, never crawled.
  {
    sim::PeakDatasetOptions opt;
    opt.num_samples = 1;
    opt.peaks_per_sample = 100;
    gdm::Metadata meta;
    meta.Add("dataType", "ChipSeq");
    meta.Add("embargo", "unpublished");
    sanger.Publish(sim::GeneratePeakDataset(genome, opt, 6, "EMBARGOED"),
                   std::move(meta), /*is_public=*/false);
  }

  iog::SearchService service;
  service.AddHost(&polimi);
  service.AddHost(&broad);
  service.AddHost(&sanger);

  // Crawl: metadata always; datasets cached when under the per-dataset
  // budget (the non-intrusive protocol).
  auto stats = service.Crawl(/*cache_budget_bytes=*/60 * 1024).ValueOrDie();
  std::printf(
      "crawl: %zu hosts, %zu entries indexed, %zu datasets cached "
      "(metadata %s, data %s)\n",
      stats.hosts_visited, stats.entries_indexed, stats.datasets_cached,
      HumanBytes(stats.metadata_bytes).c_str(),
      HumanBytes(stats.dataset_bytes).c_str());

  // Keyword + ontology searches.
  for (const char* query :
       {"CTCF", "K562", "cancer_cell_line", "histone_mark"}) {
    auto snippets = service.Search(query);
    std::printf("\nsearch '%s' -> %zu snippets\n", query, snippets.size());
    for (const auto& s : snippets) {
      std::printf("  %-44s host=%-22s score=%.1f %s\n", s.url.c_str(),
                  s.host.c_str(), s.score, s.cached ? "[cached]" : "");
    }
  }

  // Asynchronous dataset retrieval: first hit goes to the host, a cached
  // copy is free.
  auto snippets = service.Search("CTCF");
  if (!snippets.empty()) {
    uint64_t bytes = 0;
    auto ds = service.FetchDataset(snippets[0].url, &bytes);
    if (ds.ok()) {
      std::printf("\nfetched %s: %zu samples, %llu regions (%s %s)\n",
                  snippets[0].url.c_str(), ds.value().num_samples(),
                  static_cast<unsigned long long>(ds.value().TotalRegions()),
                  HumanBytes(bytes).c_str(),
                  bytes == 0 ? "from cache" : "over the wire");

      // Feature-based region search on the fetched dataset: rank regions by
      // signal and length ("search and feature evaluation intertwine").
      RegionSearch region_search({});
      std::vector<FeatureWeight> weights = {
          {RegionFeature::kAttrValue, 1.0, "signal"},
          {RegionFeature::kLength, 0.25, ""}};
      auto hits = region_search.TopK(ds.value(), weights, 5);
      if (hits.ok()) {
        std::puts("top regions by (signal, length):");
        for (const auto& h : hits.value()) {
          std::printf("  %-28s score=%.3f\n", h.region.CoordString().c_str(),
                      h.score);
        }
      }
    }
  }
  return 0;
}
