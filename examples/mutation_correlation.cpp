// Section 3 problem 1: correlating cancer-inducing mutations and DNA breaks
// with abnormal gene activity.
//
// "GMQL can extract differentially dis-regulated genes, intersect them with
// regions where string breaks occur, and then count the mutations in various
// conditions." This example runs exactly that pipeline over synthetic data
// in which oncogene induction (a) shifts replication timing of some domains,
// (b) doubles break-point counts in fragile sites and (c) dysregulates ~10%
// of genes — the correlation the study looks for is present by construction
// and the pipeline must recover it.

#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "core/runner.h"
#include "sim/generators.h"

using namespace gdms;  // NOLINT: example brevity

int main() {
  auto genome = gdm::GenomeAssembly::HumanLike(8, 60000000);
  const uint64_t seed = 47;

  core::QueryRunner runner;
  auto catalog = sim::GenerateGenes(genome, 1000, seed);
  runner.RegisterDataset(sim::GenerateExpression(genome, catalog, {}, seed));
  sim::BreakpointOptions bopt;
  bopt.breaks_per_sample = 6000;
  runner.RegisterDataset(sim::GenerateBreakpoints(genome, bopt, seed));
  sim::MutationOptions mopt;
  mopt.num_samples = 4;
  mopt.mutations_per_sample = 15000;
  runner.RegisterDataset(sim::GenerateMutations(genome, mopt, seed));
  runner.RegisterDataset(sim::GenerateReplicationTiming(genome, {}, seed));

  // Stage 1 (GMQL): per-condition gene expression mapped onto genes is
  // already one region per gene; materialize both conditions.
  auto stage1 = runner.Run(
      "CTRL = SELECT(condition == 'control') EXPRESSION;\n"
      "IND = SELECT(condition == 'oncogene_induced') EXPRESSION;\n"
      "MATERIALIZE CTRL; MATERIALIZE IND;\n");
  if (!stage1.ok()) {
    std::fprintf(stderr, "%s\n", stage1.status().ToString().c_str());
    return 1;
  }
  const auto& ctrl = stage1.value().at("CTRL").sample(0);
  const auto& ind = stage1.value().at("IND").sample(0);
  size_t fpkm = *stage1.value().at("CTRL").schema().IndexOf("fpkm");
  size_t gene = *stage1.value().at("CTRL").schema().IndexOf("gene");

  // Differentially dis-regulated genes: |log2 fold change| >= 1.
  gdm::RegionSchema diff_schema;
  (void)diff_schema.AddAttr("gene", gdm::AttrType::kString);
  (void)diff_schema.AddAttr("log2fc", gdm::AttrType::kDouble);
  gdm::Dataset diff_genes("DIFF_GENES", diff_schema);
  gdm::Sample diff_sample(1);
  diff_sample.metadata.Add("derived", "differential_expression");
  for (size_t i = 0; i < ctrl.regions.size(); ++i) {
    double a = ctrl.regions[i].values[fpkm].AsDouble();
    double b = ind.regions[i].values[fpkm].AsDouble();
    double log2fc = std::log2((b + 1e-9) / (a + 1e-9));
    if (log2fc >= 1.0 || log2fc <= -1.0) {
      gdm::GenomicRegion r = ctrl.regions[i];
      r.values = {ctrl.regions[i].values[gene], gdm::Value(log2fc)};
      diff_sample.regions.push_back(std::move(r));
    }
  }
  diff_sample.SortNow();
  size_t n_diff = diff_sample.regions.size();
  diff_genes.AddSample(std::move(diff_sample));
  runner.RegisterDataset(std::move(diff_genes));
  std::printf("differentially dis-regulated genes: %zu of %zu\n", n_diff,
              ctrl.regions.size());

  // Stage 2 (GMQL): intersect dis-regulated genes with break regions of the
  // induced condition, then count mutations per condition on those genes.
  auto stage2 = runner.Run(
      "IND_BREAKS = SELECT(condition == 'oncogene_induced') BREAKS;\n"
      "BROKEN_GENES = JOIN(DLE(0); LEFT) DIFF_GENES IND_BREAKS;\n"
      "MUT_ON_DIFF = MAP(mut_count AS COUNT, mean_vaf AS AVG(vaf)) "
      "DIFF_GENES MUTATIONS;\n"
      "MATERIALIZE BROKEN_GENES; MATERIALIZE MUT_ON_DIFF;\n");
  if (!stage2.ok()) {
    std::fprintf(stderr, "%s\n", stage2.status().ToString().c_str());
    return 1;
  }
  const auto& broken = stage2.value().at("BROKEN_GENES");
  std::printf("dis-regulated genes hit by induced breaks: %llu region pairs\n",
              static_cast<unsigned long long>(broken.TotalRegions()));

  // Stage 3: the correlation readout. Mutations should concentrate on the
  // genes where string breaks occur (shared fragile sites), so split the
  // mapped mutation counts by break-hit vs break-free genes, per condition.
  std::set<std::pair<int32_t, int64_t>> broken_coords;
  for (const auto& s : broken.samples()) {
    for (const auto& r : s.regions) broken_coords.insert({r.chrom, r.left});
  }
  const auto& mapped = stage2.value().at("MUT_ON_DIFF");
  size_t mc = *mapped.schema().IndexOf("mut_count");
  struct Load {
    uint64_t broken_mutations = 0;
    uint64_t broken_genes = 0;
    uint64_t other_mutations = 0;
    uint64_t other_genes = 0;
  };
  std::map<std::string, Load> by_condition;
  for (const auto& s : mapped.samples()) {
    auto& load = by_condition[s.metadata.FirstValue("condition")];
    for (const auto& r : s.regions) {
      bool hit = broken_coords.count({r.chrom, r.left}) > 0;
      uint64_t n = static_cast<uint64_t>(r.values[mc].AsInt());
      if (hit) {
        load.broken_mutations += n;
        ++load.broken_genes;
      } else {
        load.other_mutations += n;
        ++load.other_genes;
      }
    }
  }
  std::puts("\nmutations per dis-regulated gene, break-hit vs break-free:");
  std::printf("%-20s %16s %16s %8s\n", "condition", "break-hit genes",
              "break-free genes", "ratio");
  for (const auto& [condition, load] : by_condition) {
    double hit_rate = load.broken_genes == 0
                          ? 0
                          : static_cast<double>(load.broken_mutations) /
                                load.broken_genes;
    double other_rate = load.other_genes == 0
                            ? 0
                            : static_cast<double>(load.other_mutations) /
                                  load.other_genes;
    std::printf("%-20s %16.2f %16.2f %8.1fx\n", condition.c_str(), hit_rate,
                other_rate, other_rate > 0 ? hit_rate / other_rate : 0.0);
  }
  std::puts(
      "\n(mutations and string breaks share fragile sites, so break-hit "
      "genes\ncarry the higher load — the correlation the study sets out to "
      "find)");
  return 0;
}
