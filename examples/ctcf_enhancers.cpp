// Figure 3 / Section 3 problem 2: CTCF loops and gene regulation by
// enhancers.
//
// "The assumption to be tested is whether there is a direct relationship
// between active enhancers and active genes when enhancers and promoters are
// enclosed within CTCF loops." The pipeline extracts candidate
// enhancer-gene pairs by intersecting CTCF loop regions, the three
// methylation/acetylation experiments (H3K27ac, H3K4me1, H3K4me3) and
// promoter regions — all in GMQL.

#include <cstdio>

#include "core/runner.h"
#include "sim/generators.h"

using namespace gdms;  // NOLINT: example brevity

int main() {
  auto genome = gdm::GenomeAssembly::HumanLike(8, 60000000);
  const uint64_t seed = 33;

  core::QueryRunner runner;

  // CTCF loops (ChIA-PET style) and their anchor peaks.
  sim::CtcfLoopOptions lopt;
  lopt.num_loops = 1500;
  runner.RegisterDataset(sim::GenerateCtcfLoops(genome, lopt, seed));
  runner.RegisterDataset(sim::GenerateCtcfAnchors(genome, lopt, seed));

  // The three enhancer/promoter marks of Figure 3 as ChIP-seq datasets.
  sim::PeakDatasetOptions popt;
  popt.num_samples = 3;
  popt.peaks_per_sample = 4000;
  popt.antibodies = {"H3K27ac", "H3K4me1", "H3K4me3"};
  runner.RegisterDataset(sim::GeneratePeakDataset(genome, popt, seed, "MARKS"));

  // RefSeq-like annotations.
  auto catalog = sim::GenerateGenes(genome, 1200, seed);
  runner.RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, seed));

  // The GMQL pipeline:
  //  1. active enhancer candidates: genomic stretches covered by >= 2 of the
  //     three marks (COVER over the mark samples);
  //  2. keep candidates inside a CTCF loop (JOIN with overlap, INT output);
  //  3. pair those candidates with promoters in the same neighbourhood
  //     (genometric JOIN, distance <= 200kb — the "short loop" scale);
  //  4. count marks supporting each candidate via MAP for reporting.
  const char* query =
      "MARKED = SELECT(dataType == 'ChipSeq') MARKS;\n"
      "ACTIVE = COVER(2, ANY; support AS COUNT) MARKED;\n"
      "IN_LOOP = JOIN(DLE(0); INT) ACTIVE CTCF_LOOPS;\n"
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "PAIRS = JOIN(DLE(200000); CAT) PROMS IN_LOOP;\n"
      "MATERIALIZE ACTIVE; MATERIALIZE IN_LOOP; MATERIALIZE PAIRS;\n";
  std::printf("GMQL pipeline:\n%s\n", query);

  auto results = runner.Run(query);
  if (!results.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  const auto& active = results.value().at("ACTIVE");
  const auto& in_loop = results.value().at("IN_LOOP");
  const auto& pairs = results.value().at("PAIRS");

  std::printf("active enhancer candidates (>=2 marks):   %8llu regions\n",
              static_cast<unsigned long long>(active.TotalRegions()));
  std::printf("candidates enclosed in a CTCF loop:       %8llu regions\n",
              static_cast<unsigned long long>(in_loop.TotalRegions()));
  std::printf("candidate promoter-enhancer pairs:        %8llu regions\n",
              static_cast<unsigned long long>(pairs.TotalRegions()));

  // Show a few candidate pairs: the CAT output spans promoter..enhancer.
  std::puts("\nfirst candidate pairs (promoter..enhancer span, gene id):");
  if (pairs.num_samples() > 0) {
    const auto& sample = pairs.sample(0);
    auto name_idx = pairs.schema().IndexOf("name");
    for (size_t i = 0; i < 8 && i < sample.regions.size(); ++i) {
      const auto& r = sample.regions[i];
      std::printf("  %-32s %s\n", r.CoordString().c_str(),
                  name_idx ? r.values[*name_idx].ToString().c_str() : "");
    }
  }

  // Sanity signal: enclosing loops should make the pair density higher than
  // pairing against arbitrary active regions. Report the ratio.
  double enclosed_rate =
      in_loop.TotalRegions() /
      static_cast<double>(active.TotalRegions() > 0 ? active.TotalRegions() : 1);
  std::printf("\nfraction of active candidates inside loops: %.3f\n",
              enclosed_rate);
  return 0;
}
