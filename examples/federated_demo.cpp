// Section 4.4: federated query processing and protocols.
//
// Two repository nodes own their locally produced data; a coordinator ships
// GMQL text to a node, inspects the compile-time size estimate, then
// retrieves staged results — and compares the bytes moved against the
// "download everything first" anti-pattern.

#include <cstdio>

#include "common/string_util.h"
#include "repo/federation.h"
#include "search/normalizer.h"
#include "search/ontology.h"
#include "sim/generators.h"

using namespace gdms;  // NOLINT: example brevity

int main() {
  auto genome = gdm::GenomeAssembly::HumanLike(6, 50000000);

  // Node "milan" hosts ChIP-seq data; node "boston" hosts annotations plus
  // mutations. Each node owns the data it produced (paper: "each data
  // repository will be the owner of the data that are locally produced").
  repo::FederatedNode milan("milan");
  sim::PeakDatasetOptions popt;
  popt.num_samples = 8;
  popt.peaks_per_sample = 2500;
  milan.catalog()->Put(sim::GeneratePeakDataset(genome, popt, 7));
  auto catalog = sim::GenerateGenes(genome, 600, 7);
  milan.catalog()->Put(sim::GenerateAnnotations(genome, catalog, {}, 7));

  repo::FederatedNode boston("boston");
  sim::MutationOptions mopt;
  mopt.num_samples = 6;
  mopt.mutations_per_sample = 8000;
  boston.catalog()->Put(sim::GenerateMutations(genome, mopt, 8));

  repo::Coordinator coordinator;
  coordinator.AddNode(&milan);
  coordinator.AddNode(&boston);

  // Step 1: dataset discovery.
  std::puts("== INFO: remote dataset discovery ==");
  std::fputs(milan.HandleInfo().c_str(), stdout);

  // Step 2: remote compilation with size estimates.
  const char* query =
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;\n"
      "R = MAP(peak_count AS COUNT) PROMS PEAKS;\n"
      "TOPK = ORDER(antibody; TOP 2) R;\n"
      "MATERIALIZE TOPK;\n";
  repo::CompileInfo compile = milan.HandleCompile(query);
  std::printf("\n== COMPILE on milan ==\nok=%d est_regions=%.0f est_bytes=%s\n",
              compile.ok, compile.estimated_regions,
              HumanBytes(static_cast<uint64_t>(compile.estimated_bytes)).c_str());

  // Step 3: query shipping with staged retrieval.
  auto remote = coordinator.RunRemote("milan", query);
  if (!remote.ok()) {
    std::fprintf(stderr, "remote run failed: %s\n",
                 remote.status().ToString().c_str());
    return 1;
  }
  auto counters = coordinator.counters();
  uint64_t query_shipping = counters.bytes_sent + counters.bytes_received;
  std::printf(
      "\n== query shipping ==\nrequests=%llu sent=%s received=%s "
      "(result: %llu regions in %zu samples)\n",
      static_cast<unsigned long long>(counters.requests),
      HumanBytes(counters.bytes_sent).c_str(),
      HumanBytes(counters.bytes_received).c_str(),
      static_cast<unsigned long long>(remote.value().at("TOPK").TotalRegions()),
      remote.value().at("TOPK").num_samples());

  // Step 4: the alternative — fetch both datasets and compute locally.
  coordinator.ResetCounters();
  auto local = coordinator.RunWithDataShipping(
      "milan", {"ANNOTATIONS", "ENCODE"}, query);
  if (!local.ok()) {
    std::fprintf(stderr, "data-shipping run failed: %s\n",
                 local.status().ToString().c_str());
    return 1;
  }
  counters = coordinator.counters();
  uint64_t data_shipping = counters.bytes_sent + counters.bytes_received;
  std::printf("\n== data shipping ==\nrequests=%llu total=%s\n",
              static_cast<unsigned long long>(counters.requests),
              HumanBytes(data_shipping).c_str());

  std::printf(
      "\nquery shipping moved %s; data shipping moved %s (%.1fx more)\n",
      HumanBytes(query_shipping).c_str(), HumanBytes(data_shipping).c_str(),
      static_cast<double>(data_shipping) /
          static_cast<double>(query_shipping > 0 ? query_shipping : 1));

  // Step 5: a second node answers a different question on its own data.
  coordinator.ResetCounters();
  auto boston_result = coordinator.RunRemote(
      "boston",
      "ONCO = SELECT(condition == 'oncogene_induced') MUTATIONS;\n"
      "DENSE = COVER(2, ANY) ONCO;\nMATERIALIZE DENSE;\n");
  if (boston_result.ok()) {
    std::printf(
        "\nboston answered locally: %llu recurrent-mutation regions "
        "(transfer %s)\n",
        static_cast<unsigned long long>(
            boston_result.value().at("DENSE").TotalRegions()),
        HumanBytes(coordinator.counters().bytes_received).c_str());
  }

  // Step 6: ontology-normalized metadata makes the federation vocabulary
  // compatible ("compatible metadata", Section 4.3), then a broadcast query
  // selects sequencing assays on every node that has them.
  search::Ontology ontology = search::Ontology::BuiltinBio();
  search::MetadataNormalizer normalizer(&ontology);
  for (auto* node : {&milan, &boston}) {
    for (const auto& name : node->catalog()->Names()) {
      gdm::Dataset ds = *node->catalog()->Get(name);
      auto stats = normalizer.Normalize(&ds);
      node->catalog()->Put(std::move(ds));
      std::printf("normalized %s@%s: %zu values rewritten, %zu terms added\n",
                  name.c_str(), node->name().c_str(), stats.values_rewritten,
                  stats.terms_added);
    }
  }
  auto everywhere = coordinator.RunEverywhere(
      "X = SELECT(_term == 'sequencing_assay') ENCODE;\nMATERIALIZE X;\n");
  if (everywhere.ok()) {
    std::printf("\n== broadcast (every node that can answer): %s ==\n",
                everywhere.value().Annotation().c_str());
    for (const auto& [key, ds] : everywhere.value().datasets) {
      std::printf("  %-14s %zu samples, %llu regions\n", key.c_str(),
                  ds.num_samples(),
                  static_cast<unsigned long long>(ds.TotalRegions()));
    }
  }
  return 0;
}
