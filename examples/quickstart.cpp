// Quickstart: the GDM data model and the paper's Section 2 GMQL query.
//
// Builds the PEAKS dataset of Figure 2 literally, round-trips it through the
// native GDM format, then runs the three-operation query of Section 2
// (SELECT + SELECT + MAP) over synthetic ENCODE-like data.

#include <cstdio>
#include <iostream>

#include "core/runner.h"
#include "gdm/dataset.h"
#include "io/gdm_format.h"
#include "sim/generators.h"

namespace {

using namespace gdms;  // NOLINT: example brevity

gdm::Dataset Figure2Peaks() {
  gdm::RegionSchema schema;
  (void)schema.AddAttr("p_value", gdm::AttrType::kDouble);
  gdm::Dataset ds("PEAKS", schema);
  int32_t chr1 = gdm::InternChrom("chr1");
  int32_t chr2 = gdm::InternChrom("chr2");

  gdm::Sample s1(1);
  s1.metadata.Add("antibody_target", "CTCF");
  s1.metadata.Add("dataType", "ChipSeq");
  s1.metadata.Add("cell", "HeLa-S3");
  s1.metadata.Add("karyotype", "cancer");
  s1.regions = {
      {chr1, 2571, 3049, gdm::Strand::kPlus, {gdm::Value(3.3e-9)}},
      {chr1, 10200, 10641, gdm::Strand::kMinus, {gdm::Value(1.2e-7)}},
      {chr1, 30018, 30601, gdm::Strand::kPlus, {gdm::Value(8.1e-10)}},
      {chr2, 1001, 1441, gdm::Strand::kPlus, {gdm::Value(3.4e-8)}},
      {chr2, 8801, 9321, gdm::Strand::kMinus, {gdm::Value(5.5e-9)}},
  };
  s1.SortNow();

  gdm::Sample s2(2);
  s2.metadata.Add("antibody_target", "POLR2A");
  s2.metadata.Add("dataType", "ChipSeq");
  s2.metadata.Add("sex", "female");
  s2.regions = {
      {chr1, 3001, 3540, gdm::Strand::kNone, {gdm::Value(6.0e-8)}},
      {chr1, 15000, 15440, gdm::Strand::kNone, {gdm::Value(2.2e-7)}},
      {chr2, 1200, 1640, gdm::Strand::kNone, {gdm::Value(9.1e-9)}},
      {chr2, 10200, 10560, gdm::Strand::kNone, {gdm::Value(4.4e-8)}},
  };
  s2.SortNow();

  ds.AddSample(std::move(s1));
  ds.AddSample(std::move(s2));
  return ds;
}

}  // namespace

int main() {
  std::puts("== GDM quickstart: Figure 2 ==");
  gdm::Dataset peaks = Figure2Peaks();
  Status valid = peaks.Validate();
  std::printf("dataset validates: %s\n", valid.ToString().c_str());
  std::fputs(peaks.Describe(2, 5).c_str(), stdout);

  // Interoperability: serialize to the native format and back.
  std::string wire = io::WriteGdmString(peaks);
  auto back = io::ReadGdmString(wire);
  std::printf("\nround-trip through GDM format: %s (%zu bytes)\n",
              back.ok() ? "ok" : back.status().ToString().c_str(),
              wire.size());

  // The Section 2 query over synthetic data.
  std::puts("\n== Section 2 query over synthetic ENCODE-like data ==");
  auto genome = gdm::GenomeAssembly::HumanLike(8, 60000000);
  core::QueryRunner runner;
  sim::PeakDatasetOptions popt;
  popt.num_samples = 12;
  popt.peaks_per_sample = 3000;
  runner.RegisterDataset(sim::GeneratePeakDataset(genome, popt, 2016));
  auto catalog = sim::GenerateGenes(genome, 800, 2016);
  runner.RegisterDataset(sim::GenerateAnnotations(genome, catalog, {}, 2016));

  const char* query =
      "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;\n"
      "PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;\n"
      "RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;\n"
      "MATERIALIZE RESULT;\n";
  std::printf("query:\n%s\n", query);

  auto results = runner.Run(query);
  if (!results.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  const gdm::Dataset& result = results.value().at("RESULT");
  std::printf("RESULT: %zu samples (one per ChIP-seq experiment), %llu regions, ~%llu bytes\n",
              result.num_samples(),
              static_cast<unsigned long long>(result.TotalRegions()),
              static_cast<unsigned long long>(result.EstimateBytes()));

  size_t pc = *result.schema().IndexOf("peak_count");
  const auto& first = result.sample(0);
  std::puts("first sample, first 5 promoters:");
  for (size_t i = 0; i < 5 && i < first.regions.size(); ++i) {
    const auto& r = first.regions[i];
    std::printf("  %-28s peak_count=%lld\n", r.CoordString().c_str(),
                static_cast<long long>(r.values[pc].AsInt()));
  }
  std::printf("provenance of that sample: %s\n",
              first.metadata.FirstValue("_provenance").c_str());
  std::printf("\nstats: %zu operators evaluated in %.3f s\n",
              runner.last_stats().operators_evaluated,
              runner.last_stats().wall_seconds);
  return 0;
}
